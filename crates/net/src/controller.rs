//! The SLO-aware adaptive batching controller.
//!
//! The fixed `fill_timeout`/`cohort_size` pair is one point on the
//! latency/throughput frontier; the right point depends on offered load.
//! This module replaces the fixed pair with a per-shard feedback
//! controller that watches the shard's own live telemetry — the
//! request-latency and cohort-fill histograms plus the request counter,
//! all already published through [`crate::ShardMetrics`] — against a
//! declared p99 SLO, and drives two knobs each control tick:
//!
//! * **target depth** — how many requests a cohort should gather before
//!   it launches without waiting for the formation deadline, and
//! * **fill deadline** — how long a partially formed cohort may age
//!   before it launches anyway.
//!
//! # Control law
//!
//! With `base = budget_frac × slo_p99` (the slice of the SLO the
//! controller may spend on cohort formation), observed EWMA arrival rate
//! `r` (req/s), windowed p99 latency `l`, and recent cohort-fill hint
//! `f ∈ [0, 1]`:
//!
//! ```text
//! pressure  p = l / slo_p99
//! scale  s(p) = clamp(1.5 − p, 0.25, 1.0)
//! deadline    = clamp(base · s(p), min_deadline, base)
//! depth       = clamp(max(⌈r · base⌉, ⌈f · max_depth⌉), min_depth, max_depth)
//! ```
//!
//! Under light load `r · base < 1`, so depth collapses to `min_depth`
//! and requests launch on the next poll — shallow cohorts for latency.
//! Under heavy load depth grows toward `max_depth` (the configured
//! cohort capacity) — deep cohorts for throughput — and the latency
//! term only ever *shrinks* the deadline, so the controller degrades
//! toward max-depth batching bounded by `base` before the shedding path
//! engages. The fill hint keeps depth from collapsing under bursty
//! arrivals that the EWMA rate underestimates: if recent launches were
//! already gathering `f · max_depth` requests, the target never drops
//! below that.
//!
//! The controller is **purely observational**: it changes *when* cohorts
//! launch and how many requests they gather, never what any request
//! computes, so responses are byte-identical at any setting.
//!
//! [`decide`] is a pure function of `(config, rate, p99, fill)`; the
//! monotonicity and bounds properties above are proptested in
//! `tests/properties.rs`.

use std::time::Duration;

use rhythm_obs::StreamingHistogram;

use crate::metrics::ShardMetrics;

/// Tunables for the adaptive controller, all derived from
/// [`crate::NetConfig`] by [`ControllerConfig::from_net`].
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerConfig {
    /// Declared end-to-end p99 latency SLO, seconds.
    pub slo_p99: f64,
    /// Fraction of the SLO the controller may spend on cohort formation
    /// (`base = budget_frac × slo_p99` is the deadline ceiling).
    pub budget_frac: f64,
    /// Floor for the fill deadline, seconds (a deadline of zero would
    /// launch every request as a cohort of one regardless of depth).
    pub min_deadline: f64,
    /// Floor for the target depth (≥ 1).
    pub min_depth: usize,
    /// Ceiling for the target depth (the cohort capacity).
    pub max_depth: usize,
    /// EWMA smoothing factor for the arrival-rate estimate, in `(0, 1]`
    /// (1 = no smoothing).
    pub ewma_alpha: f64,
    /// Seconds between control-law evaluations.
    pub tick: f64,
}

impl ControllerConfig {
    /// Derive the controller tunables from a front-end config.
    pub fn from_net(cfg: &crate::NetConfig) -> Self {
        ControllerConfig {
            slo_p99: cfg.slo_p99.as_secs_f64(),
            budget_frac: 0.25,
            min_deadline: 100e-6,
            min_depth: 1,
            max_depth: cfg.cohort_size,
            ewma_alpha: 0.3,
            tick: 2e-3,
        }
    }
}

/// One control-law evaluation: the target cohort depth and fill
/// deadline the reactor should use until the next tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Decision {
    /// Launch a cohort once it holds this many requests, even if the
    /// pool capacity is larger.
    pub depth: usize,
    /// Launch a partially formed cohort at this age, seconds.
    pub deadline_s: f64,
}

/// The pure control law: map observed load to a [`Decision`].
///
/// * `rate` — smoothed arrival rate for this shard, requests/second.
/// * `p99` — p99 of the latency window since the last tick, seconds.
/// * `fill` — recent mean cohort fill in `[0, 1]` (0 when no cohort has
///   launched in the window).
///
/// Non-finite or negative observations are treated as zero, so a cold
/// or quiescent shard gets the shallow/light-load decision. Guaranteed
/// for any config with `min_depth ≤ max_depth`: `depth` is in
/// `[min_depth, max_depth]` and nondecreasing in `rate` and `fill`;
/// `deadline_s` is in `[min(min_deadline, base), base]` and
/// nonincreasing in `p99`.
pub fn decide(cfg: &ControllerConfig, rate: f64, p99: f64, fill: f64) -> Decision {
    let sane = |v: f64| if v.is_finite() && v > 0.0 { v } else { 0.0 };
    let rate = sane(rate);
    let p99 = sane(p99);
    let fill = sane(fill).min(1.0);
    let base = (cfg.budget_frac * cfg.slo_p99).max(0.0);

    let pressure = if cfg.slo_p99 > 0.0 {
        p99 / cfg.slo_p99
    } else {
        0.0
    };
    let scale = (1.5 - pressure).clamp(0.25, 1.0);
    let lo = cfg.min_deadline.min(base);
    let deadline_s = (base * scale).clamp(lo, base.max(lo));

    let by_rate = (rate * base).ceil() as usize;
    let by_fill = (fill * cfg.max_depth as f64).ceil() as usize;
    let depth = by_rate.max(by_fill).clamp(cfg.min_depth, cfg.max_depth);

    Decision { depth, deadline_s }
}

/// Per-shard controller state: the EWMA rate estimate and the previous
/// tick's histogram snapshots (the live histograms are cumulative, so
/// each tick diffs against the last snapshot to observe only the most
/// recent window).
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    /// Epoch seconds of the last tick.
    last_tick_s: f64,
    /// `requests` counter at the last tick.
    last_requests: u64,
    /// Smoothed arrival rate, req/s.
    rate_ewma: f64,
    /// Cumulative latency histogram (all keys merged) at the last tick.
    last_latency: Option<StreamingHistogram>,
    /// Cumulative fill histogram at the last tick.
    last_fill: Option<StreamingHistogram>,
    /// The decision currently in force.
    decision: Decision,
}

impl Controller {
    /// A controller that starts from the fixed-config decision
    /// (`cohort_size` depth, `fill_timeout` deadline) so behavior before
    /// the first tick matches the non-adaptive server.
    pub fn new(cfg: ControllerConfig, initial_deadline: Duration) -> Self {
        let decision = Decision {
            depth: cfg.max_depth,
            deadline_s: initial_deadline.as_secs_f64(),
        };
        Controller {
            cfg,
            last_tick_s: 0.0,
            last_requests: 0,
            rate_ewma: 0.0,
            last_latency: None,
            last_fill: None,
            decision,
        }
    }

    /// The decision currently in force.
    pub fn decision(&self) -> Decision {
        self.decision
    }

    /// The controller's tunables.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// The smoothed arrival-rate estimate, req/s.
    pub fn rate(&self) -> f64 {
        self.rate_ewma
    }

    /// Re-evaluate the control law if a tick has elapsed; returns the
    /// (possibly updated) decision. `now_s` is seconds since the
    /// reactor's epoch; observations come from the shard's own live
    /// metrics (`requests` counter, latency and fill histograms).
    pub fn observe(&mut self, now_s: f64, requests: u64, metrics: &ShardMetrics) -> Decision {
        let dt = now_s - self.last_tick_s;
        if dt < self.cfg.tick {
            return self.decision;
        }
        // Arrival rate over the window, EWMA-smoothed.
        let delta = requests.saturating_sub(self.last_requests);
        let inst = delta as f64 / dt.max(1e-9);
        self.rate_ewma = if self.last_tick_s == 0.0 {
            inst
        } else {
            self.cfg.ewma_alpha * inst + (1.0 - self.cfg.ewma_alpha) * self.rate_ewma
        };
        self.last_tick_s = now_s;
        self.last_requests = requests;

        // Windowed p99 from the cumulative latency histograms (all
        // cohort keys merged: the SLO is per request, not per type).
        // Same bucket config as AtomicHistogram::for_latency_seconds().
        let mut lat = StreamingHistogram::new(1e-6, 8);
        for (_, h) in metrics.latency_views() {
            lat.merge(&h);
        }
        let p99 = {
            let w = match &self.last_latency {
                Some(prev) => lat.diff(prev),
                None => lat.clone(),
            };
            if w.count() > 0 {
                w.quantile(0.99)
            } else {
                0.0
            }
        };
        self.last_latency = Some(lat);

        // Windowed mean fill from the cumulative fill histogram.
        let fill_now = metrics.fill_snapshot();
        let fill = {
            let w = match &self.last_fill {
                Some(prev) => fill_now.diff(prev),
                None => fill_now.clone(),
            };
            if w.count() > 0 {
                w.mean()
            } else {
                0.0
            }
        };
        self.last_fill = Some(fill_now);

        self.decision = decide(&self.cfg, self.rate_ewma, p99, fill);
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            slo_p99: 20e-3,
            budget_frac: 0.25,
            min_deadline: 100e-6,
            min_depth: 1,
            max_depth: 32,
            ewma_alpha: 0.3,
            tick: 2e-3,
        }
    }

    #[test]
    fn light_load_collapses_to_shallow_cohorts() {
        let d = decide(&cfg(), 10.0, 1e-3, 0.0);
        assert_eq!(d.depth, 1, "10 req/s × 5 ms budget < 1 request");
        assert!(
            (d.deadline_s - 5e-3).abs() < 1e-12,
            "unpressured: full base"
        );
    }

    #[test]
    fn heavy_load_deepens_cohorts() {
        let d = decide(&cfg(), 10_000.0, 1e-3, 0.0);
        assert_eq!(d.depth, 32, "10k req/s × 5 ms ≫ capacity: clamp to max");
    }

    #[test]
    fn latency_pressure_shrinks_deadline_but_never_below_floor() {
        let c = cfg();
        let relaxed = decide(&c, 1000.0, 1e-3, 0.0);
        let pressured = decide(&c, 1000.0, 19e-3, 0.0);
        let over = decide(&c, 1000.0, 100e-3, 0.0);
        assert!(pressured.deadline_s < relaxed.deadline_s);
        assert!(over.deadline_s <= pressured.deadline_s);
        assert!(over.deadline_s >= c.min_deadline);
        // Depth is untouched by pressure: degrade toward max-depth
        // batching, not toward shedding.
        assert_eq!(relaxed.depth, pressured.depth);
        assert_eq!(relaxed.depth, over.depth);
    }

    #[test]
    fn fill_hint_holds_depth_up_under_bursts() {
        let d = decide(&cfg(), 10.0, 1e-3, 0.5);
        assert_eq!(d.depth, 16, "recent fills at 0.5 × 32 keep depth ≥ 16");
    }

    #[test]
    fn pathological_inputs_are_sanitized() {
        let c = cfg();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -5.0] {
            let d = decide(&c, bad, bad, bad);
            assert!(d.depth >= c.min_depth && d.depth <= c.max_depth);
            assert!(d.deadline_s.is_finite() && d.deadline_s > 0.0);
        }
    }

    #[test]
    fn observe_windows_the_latency_histogram() {
        // 100 fast samples land before the first tick; 10 slow ones
        // after. The second tick must see only the slow window, not the
        // cumulative blend.
        let c = cfg();
        let metrics = ShardMetrics::new();
        let mut ctl = Controller::new(c.clone(), Duration::from_millis(2));
        for _ in 0..100 {
            metrics.record_latency(0, || "t".into(), 1e-3);
        }
        ctl.observe(5e-3, 100, &metrics);
        for _ in 0..10 {
            metrics.record_latency(0, || "t".into(), 100e-3);
        }
        let d = ctl.observe(10e-3, 110, &metrics);
        // Windowed p99 ≈ 100 ms ≫ SLO: the scale bottoms out at 0.25,
        // pinning the deadline to a quarter of the formation budget. A
        // cumulative (unwindowed) p99 would still be ≈ 1 ms and leave
        // the deadline at the full budget.
        let base = c.budget_frac * c.slo_p99;
        assert!(
            (d.deadline_s - 0.25 * base).abs() < 1e-12,
            "deadline {} with pressured window",
            d.deadline_s
        );
    }

    #[test]
    fn controller_ticks_and_tracks_rate() {
        let c = cfg();
        let metrics = ShardMetrics::new();
        let mut ctl = Controller::new(c, Duration::from_millis(2));
        let first = ctl.decision();
        assert_eq!(first.depth, 32, "pre-tick: fixed-config behavior");
        // Below the tick interval: no re-evaluation.
        assert_eq!(ctl.observe(1e-3, 5, &metrics), first);
        // Past the tick: 1000 requests over ~10 ms → ~100k req/s.
        let d = ctl.observe(10e-3, 1000, &metrics);
        assert!(ctl.rate() > 50_000.0, "rate {}", ctl.rate());
        assert_eq!(d.depth, 32);
        // Light follow-up window pulls the EWMA (and depth) down.
        let mut now = 10e-3;
        let mut d2 = d;
        for _ in 0..20 {
            now += 5e-3;
            d2 = ctl.observe(now, 1000, &metrics);
        }
        assert!(ctl.rate() < 100.0, "rate decays: {}", ctl.rate());
        assert_eq!(d2.depth, 1);
    }
}
