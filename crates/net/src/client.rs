//! Minimal blocking HTTP/1.1 client helpers for tests, the load
//! generator, and demos.
//!
//! Only what a closed-loop client needs: write a raw request, read one
//! framed response (status line + headers + `Content-Length` body),
//! carrying any over-read bytes forward for keep-alive reuse.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// One parsed-off-the-wire response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawResponse {
    /// Numeric status code from the status line.
    pub status: u16,
    /// The full response bytes (status line, headers, body).
    pub bytes: Vec<u8>,
}

impl RawResponse {
    /// The body portion (after the blank line), if any.
    pub fn body(&self) -> &[u8] {
        match find_header_end(&self.bytes) {
            Some(end) => &self.bytes[end..],
            None => &[],
        }
    }

    /// Case-insensitive single-header lookup, value trimmed.
    pub fn header(&self, name: &str) -> Option<String> {
        let head_end = find_header_end(&self.bytes)?;
        let head = std::str::from_utf8(&self.bytes[..head_end]).ok()?;
        for line in head.lines().skip(1) {
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case(name) {
                    return Some(v.trim().to_string());
                }
            }
        }
        None
    }
}

/// Find the end of the header block. Tolerates both CRLF and bare-LF
/// line endings: the Rhythm response builder emits `\r\n\r\n`, but the
/// workload's page templates end their header block with `\n\n`.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Parse `Content-Length` out of a header block (case-insensitive).
fn content_length(head: &[u8]) -> Option<usize> {
    let text = std::str::from_utf8(head).ok()?;
    for line in text.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                return v.trim().parse().ok();
            }
        }
    }
    None
}

fn parse_status(buf: &[u8]) -> u16 {
    // "HTTP/1.1 200 OK" — second whitespace-separated token.
    std::str::from_utf8(buf)
        .ok()
        .and_then(|s| s.lines().next())
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .unwrap_or(0)
}

/// Scan for one complete framed response at the start of `buf` without
/// consuming it: returns `(status, total_len)` when the header block and
/// the declared `Content-Length` body are fully present.
///
/// This is the non-blocking counterpart of [`read_response`] for callers
/// that own their buffering (the open-loop load generator): feed socket
/// bytes into a buffer, call this in a loop, and drain `total_len` bytes
/// per framed response. Responses without a `Content-Length` cannot be
/// framed this way and report their header block as the whole response.
pub fn scan_response(buf: &[u8]) -> Option<(u16, usize)> {
    let head_end = find_header_end(buf)?;
    let total = match content_length(&buf[..head_end]) {
        Some(len) => head_end + len,
        None => head_end,
    };
    if buf.len() < total {
        return None;
    }
    Some((parse_status(&buf[..head_end]), total))
}

/// Write raw request bytes to the stream.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn send_request(stream: &mut TcpStream, raw: &[u8]) -> io::Result<()> {
    stream.write_all(raw)?;
    stream.flush()
}

/// Read one complete HTTP response from a blocking stream.
///
/// `carry` holds bytes over-read past the previous response on the same
/// connection; leftover bytes after this response are put back into it,
/// so the same `(stream, carry)` pair can read a pipelined or keep-alive
/// sequence of responses.
///
/// Responses without a `Content-Length` are read until EOF.
///
/// # Errors
///
/// `UnexpectedEof` if the peer closes mid-response; otherwise socket
/// read errors.
pub fn read_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> io::Result<RawResponse> {
    let mut buf = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    let mut eof = false;

    // Phase 1: accumulate until the header block is complete.
    let head_end = loop {
        if let Some(end) = find_header_end(&buf) {
            break end;
        }
        if eof {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response headers completed",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            eof = true;
        } else {
            buf.extend_from_slice(&chunk[..n]);
        }
    };

    // Phase 2: read the declared body (or until EOF when undeclared).
    let total = match content_length(&buf[..head_end]) {
        Some(len) => head_end + len,
        None => {
            while !eof {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    eof = true;
                } else {
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
            buf.len()
        }
    };
    while buf.len() < total {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }

    *carry = buf.split_off(total);
    let status = parse_status(&buf);
    Ok(RawResponse { status, bytes: buf })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_tolerates_both_terminators() {
        assert_eq!(
            find_header_end(b"HTTP/1.1 200 OK\r\nA: b\r\n\r\nxy"),
            Some(25)
        );
        assert_eq!(find_header_end(b"HTTP/1.1 200 OK\nA: b\n\nxy"), Some(22));
        assert_eq!(find_header_end(b"HTTP/1.1 200 OK\r\nA: b"), None);
    }

    #[test]
    fn status_and_headers_parse() {
        let resp = RawResponse {
            status: parse_status(b"HTTP/1.1 503 Service Unavailable\r\n"),
            bytes:
                b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\nContent-Length: 2\r\n\r\nok"
                    .to_vec(),
        };
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after").as_deref(), Some("2"));
        assert_eq!(resp.header("RETRY-AFTER").as_deref(), Some("2"));
        assert_eq!(resp.header("missing"), None);
        assert_eq!(resp.body(), b"ok");
    }

    #[test]
    fn content_length_is_case_insensitive() {
        assert_eq!(
            content_length(b"HTTP/1.1 200 OK\r\ncontent-length: 7\r\n"),
            Some(7)
        );
        assert_eq!(content_length(b"HTTP/1.1 200 OK\r\nHost: x\r\n"), None);
    }
}
