//! Canned error/overload responses the front end emits without invoking
//! the workload handler.

use rhythm_http::ResponseBuilder;

fn plain(status: u16, reason: &str, extra: &[(&str, &str)], body: &str) -> Vec<u8> {
    let mut r = ResponseBuilder::new(status, reason);
    r.header("Content-Type", "text/plain");
    r.header("Server", "Rhythm/0.1");
    for (name, value) in extra {
        r.header(name, value);
    }
    r.reserve_content_length();
    r.finish_headers();
    r.write_str(body);
    r.finish()
}

/// `503 Service Unavailable` with a `Retry-After` — emitted when the
/// cohort pool is exhausted or the connection cap is hit (overload
/// shedding; clients should back off and retry).
pub fn shed_503(retry_after_s: u32) -> Vec<u8> {
    plain(
        503,
        "Service Unavailable",
        &[
            ("Retry-After", &retry_after_s.to_string()),
            ("Connection", "close"),
        ],
        "server overloaded, retry later",
    )
}

/// `413 Payload Too Large` — the request exceeded the reader's size cap.
pub fn too_large_413() -> Vec<u8> {
    plain(
        413,
        "Payload Too Large",
        &[("Connection", "close")],
        "request exceeds size limit",
    )
}

/// `400 Bad Request` for malformed input.
pub fn bad_request_400(msg: &str) -> Vec<u8> {
    plain(
        400,
        "Bad Request",
        &[("Connection", "close")],
        &format!("bad request: {msg}"),
    )
}

/// `404 Not Found` for requests no cohort key claims.
pub fn not_found_404() -> Vec<u8> {
    plain(404, "Not Found", &[], "unknown endpoint")
}

/// `500 Internal Server Error` — the workload handler returned fewer
/// responses than cohort members (a handler bug the front end survives).
pub fn internal_500() -> Vec<u8> {
    plain(
        500,
        "Internal Server Error",
        &[],
        "handler produced no response",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_responses_are_well_formed() {
        let shed = String::from_utf8(shed_503(2)).unwrap();
        assert!(shed.starts_with("HTTP/1.1 503 "));
        assert!(shed.contains("Retry-After: 2\r\n"));
        assert!(shed.contains("Content-Length: "));

        let large = String::from_utf8(too_large_413()).unwrap();
        assert!(large.starts_with("HTTP/1.1 413 "));

        let bad = String::from_utf8(bad_request_400("nope")).unwrap();
        assert!(bad.starts_with("HTTP/1.1 400 "));
        assert!(bad.ends_with("bad request: nope"));

        let nf = String::from_utf8(not_found_404()).unwrap();
        assert!(nf.starts_with("HTTP/1.1 404 "));

        let ise = String::from_utf8(internal_500()).unwrap();
        assert!(ise.starts_with("HTTP/1.1 500 "));
    }
}
