//! Multi-trace merging and the speedup metric of the paper's
//! request-similarity study (Figure 2).

use crate::myers::{merge_pair, MergeResult};

/// Report for one merged trace group (one request type).
#[derive(Clone, PartialEq, Debug)]
pub struct SimilarityReport {
    /// Number of traces merged.
    pub traces: usize,
    /// Sum of individual trace lengths (serial execution cost).
    pub total_blocks: usize,
    /// Merged (SCS) trace length (idealized SIMD execution cost).
    pub merged_blocks: usize,
    /// True when every pairwise merge stayed within the D budget.
    pub exact: bool,
}

impl SimilarityReport {
    /// Speedup of lockstep over serial execution:
    /// `total_blocks / merged_blocks` (the paper's "sum of traces divided
    /// by the merged trace size").
    pub fn speedup(&self) -> f64 {
        if self.merged_blocks == 0 {
            0.0
        } else {
            self.total_blocks as f64 / self.merged_blocks as f64
        }
    }

    /// Ideal (linear) speedup = number of traces.
    pub fn ideal(&self) -> f64 {
        self.traces as f64
    }

    /// Speedup normalized to ideal — the y-axis of Figure 2 (1.0 means
    /// perfectly identical executions).
    pub fn relative_to_ideal(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            self.speedup() / self.ideal()
        }
    }
}

/// Merge a group of traces by iterative pairwise SCS merging (the paper
/// merges with `diff` pairwise as well). Returns the merged trace and the
/// report.
///
/// # Panics
///
/// Panics if `traces` is empty.
pub fn merge_traces<T: Eq + Clone>(traces: &[Vec<T>], max_d: usize) -> (Vec<T>, SimilarityReport) {
    assert!(!traces.is_empty(), "need at least one trace");
    let total_blocks = traces.iter().map(Vec::len).sum();
    let mut merged = traces[0].clone();
    let mut exact = true;
    for t in &traces[1..] {
        let MergeResult {
            merged: m,
            exact: e,
            ..
        } = merge_pair(&merged, t, max_d);
        merged = m;
        exact &= e;
    }
    let report = SimilarityReport {
        traces: traces.len(),
        total_blocks,
        merged_blocks: merged.len(),
        exact,
    };
    (merged, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::myers::is_supersequence;

    #[test]
    fn identical_traces_reach_ideal() {
        let t = vec![1u32, 2, 3, 4, 5];
        let traces = vec![t.clone(), t.clone(), t.clone(), t.clone()];
        let (merged, rep) = merge_traces(&traces, 100);
        assert_eq!(merged, t);
        assert_eq!(rep.speedup(), 4.0);
        assert!((rep.relative_to_ideal() - 1.0).abs() < 1e-12);
        assert!(rep.exact);
    }

    #[test]
    fn fully_distinct_traces_get_no_speedup() {
        let traces: Vec<Vec<u32>> = (0..4).map(|i| (i * 10..i * 10 + 5).collect()).collect();
        let (_, rep) = merge_traces(&traces, 1000);
        assert!((rep.speedup() - 1.0).abs() < 1e-12);
        assert!((rep.relative_to_ideal() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merged_is_supersequence_of_all() {
        let traces = vec![
            vec![1u32, 2, 3, 4, 7, 8],
            vec![1, 2, 5, 4, 7, 8],
            vec![1, 2, 3, 4, 9, 7, 8],
        ];
        let (merged, rep) = merge_traces(&traces, 100);
        for t in &traces {
            assert!(is_supersequence(&merged, t));
        }
        assert!(
            rep.speedup() > 2.0,
            "mostly-shared traces: {}",
            rep.speedup()
        );
    }

    #[test]
    fn single_trace() {
        let (merged, rep) = merge_traces(&[vec![1u32, 2]], 10);
        assert_eq!(merged, vec![1, 2]);
        assert_eq!(rep.speedup(), 1.0);
        assert_eq!(rep.ideal(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_group_rejected() {
        merge_traces::<u32>(&[], 10);
    }
}
