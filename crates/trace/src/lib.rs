//! # rhythm-trace
//!
//! Dynamic basic-block trace merging — the methodology behind the paper's
//! request-similarity study (§2.3, Figure 2).
//!
//! The paper collects per-request x86 basic-block traces with Pin and
//! merges traces of same-type requests with the UNIX `diff` utility; the
//! merged length approximates lockstep (SIMD) execution and
//! `Σ|trace| / |merged|` is the attainable speedup. Here the traces come
//! from `rhythm-simt`'s scalar executor and the merge is a from-scratch
//! Myers O(ND) diff ([`myers`]) with shortest-common-supersequence
//! recovery, iterated pairwise over a trace group ([`merge`]).
//!
//! ```
//! use rhythm_trace::merge::merge_traces;
//!
//! // Three near-identical control-flow traces (block ids):
//! let traces = vec![
//!     vec![0, 1, 1, 1, 2, 3],
//!     vec![0, 1, 1, 2, 3],      // one fewer loop iteration
//!     vec![0, 1, 1, 1, 2, 3],
//! ];
//! let (merged, report) = merge_traces(&traces, 1000);
//! assert_eq!(merged.len(), 6, "SCS is the longest variant");
//! assert!(report.relative_to_ideal() > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod merge;
pub mod myers;

pub use merge::{merge_traces, SimilarityReport};
pub use myers::{merge_pair, MergeResult};
