//! Myers O(ND) diff with path recovery, used to merge dynamic basic-block
//! traces into their shortest common supersequence (SCS).
//!
//! The paper merges Pin basic-block traces with the UNIX `diff` utility
//! (§2.3); `diff` is itself a Myers-algorithm implementation, so this is
//! a faithful reimplementation of their methodology. The SCS of two
//! traces approximates lockstep execution of both requests on SIMD
//! hardware: common blocks issue once, differing blocks serialize.

/// Result of merging two sequences.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MergeResult<T> {
    /// A shortest common supersequence of the inputs (exact when `exact`).
    pub merged: Vec<T>,
    /// Length of the longest common subsequence found.
    pub lcs: usize,
    /// Edit distance (insertions + deletions).
    pub distance: usize,
    /// False when the `max_d` budget was exceeded and a greedy
    /// common-prefix/suffix fallback was used (upper bound on SCS).
    pub exact: bool,
}

/// Merge two sequences into a shortest common supersequence.
///
/// `max_d` bounds the edit distance explored; traces of same-type
/// requests differ little, so a few thousand is ample. When exceeded,
/// a conservative fallback (common prefix + suffix, concatenated
/// middles) is returned with `exact = false`.
///
/// # Example
///
/// ```
/// use rhythm_trace::myers::merge_pair;
///
/// let a = [1, 2, 3, 4, 5];
/// let b = [1, 2, 9, 4, 5];
/// let m = merge_pair(&a, &b, 64);
/// assert!(m.exact);
/// assert_eq!(m.lcs, 4);              // 1 2 4 5
/// assert_eq!(m.merged.len(), 6);     // 1 2 {3 9} 4 5
/// assert_eq!(m.distance, 2);
/// ```
pub fn merge_pair<T: Eq + Clone>(a: &[T], b: &[T], max_d: usize) -> MergeResult<T> {
    let n = a.len();
    let m = b.len();
    if n == 0 {
        return MergeResult {
            merged: b.to_vec(),
            lcs: 0,
            distance: m,
            exact: true,
        };
    }
    if m == 0 {
        return MergeResult {
            merged: a.to_vec(),
            lcs: 0,
            distance: n,
            exact: true,
        };
    }

    // Myers greedy forward search, storing each round's V entries for
    // path recovery. Only the active `2d + 1` slice is kept per round, so
    // memory is O(D^2) in the *actual* distance, not the budget.
    let max = (n + m).min(max_d);
    let offset = max as isize;
    let width = 2 * max + 1;
    let mut v = vec![0isize; width];
    // rounds[d][k + d] = best x on diagonal k after round d.
    let mut rounds: Vec<Vec<isize>> = Vec::new();
    let mut found_d: Option<usize> = None;

    'outer: for d in 0..=max {
        let dd = d as isize;
        for k in (-dd..=dd).step_by(2) {
            let ki = (k + offset) as usize;
            let mut x = if k == -dd || (k != dd && v[ki - 1] < v[ki + 1]) {
                v[ki + 1] // down: insertion from b
            } else {
                v[ki - 1] + 1 // right: deletion from a
            };
            let mut y = x - k;
            while (x as usize) < n && (y as usize) < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            v[ki] = x;
            if x as usize >= n && y as usize >= m {
                rounds.push(v[(offset - dd) as usize..=(offset + dd) as usize].to_vec());
                found_d = Some(d);
                break 'outer;
            }
        }
        rounds.push(v[(offset - dd) as usize..=(offset + dd) as usize].to_vec());
    }

    let Some(d_final) = found_d else {
        return fallback(a, b);
    };

    // Backtrack to build the SCS: walk from (n, m) back to (0, 0).
    let mut merged_rev: Vec<T> = Vec::with_capacity(n + m);
    let mut x = n as isize;
    let mut y = m as isize;
    for d in (0..=d_final).rev() {
        let k = x - y;
        let dd = d as isize;
        // rounds[d - 1] is indexed by k' + (d - 1).
        let prev = |kp: isize| rounds[d - 1][(kp + dd - 1) as usize];
        let (prev_k, down) = if d == 0 {
            (k, false)
        } else if k == -dd || (k != dd && prev(k - 1) < prev(k + 1)) {
            (k + 1, true) // came via insertion (step down in b)
        } else {
            (k - 1, false) // came via deletion (step right in a)
        };
        let prev_x = if d == 0 { 0 } else { prev(prev_k) };
        let prev_y = prev_x - prev_k;

        // Snake: the matched run after the edit.
        let snake_start_x = if d == 0 {
            0
        } else if down {
            prev_x
        } else {
            prev_x + 1
        };
        while x > snake_start_x {
            x -= 1;
            y -= 1;
            merged_rev.push(a[x as usize].clone());
        }
        if d > 0 {
            if down {
                y -= 1;
                merged_rev.push(b[y as usize].clone());
            } else {
                x -= 1;
                merged_rev.push(a[x as usize].clone());
            }
        }
        if d == 0 {
            // Remaining initial snake is handled by the while above
            // (snake_start_x = 0); x and y are now 0.
            debug_assert_eq!(x, 0);
            debug_assert_eq!(y, 0);
        } else {
            // Both edit kinds land on the previous round's endpoint.
            x = prev_x;
            y = x - prev_k;
            // After stepping through the edit we must be at the previous
            // round's endpoint.
            debug_assert_eq!(x, prev_x);
            debug_assert_eq!(y, prev_y);
        }
    }
    merged_rev.reverse();

    let distance = d_final;
    let lcs = (n + m - distance) / 2;
    debug_assert_eq!(merged_rev.len(), n + m - lcs, "SCS length identity");
    MergeResult {
        merged: merged_rev,
        lcs,
        distance,
        exact: true,
    }
}

/// Conservative fallback when the D budget is exceeded: keep the common
/// prefix and suffix, concatenate the differing middles.
fn fallback<T: Eq + Clone>(a: &[T], b: &[T]) -> MergeResult<T> {
    let mut pre = 0;
    while pre < a.len() && pre < b.len() && a[pre] == b[pre] {
        pre += 1;
    }
    let mut suf = 0;
    while suf < a.len() - pre && suf < b.len() - pre && a[a.len() - 1 - suf] == b[b.len() - 1 - suf]
    {
        suf += 1;
    }
    let mut merged = Vec::with_capacity(a.len() + b.len() - pre - suf);
    merged.extend_from_slice(&a[..pre]);
    merged.extend_from_slice(&a[pre..a.len() - suf]);
    merged.extend_from_slice(&b[pre..b.len() - suf]);
    merged.extend_from_slice(&a[a.len() - suf..]);
    let lcs = pre + suf;
    MergeResult {
        distance: a.len() + b.len() - 2 * lcs,
        merged,
        lcs,
        exact: false,
    }
}

/// Verify that `sup` is a supersequence of `sub` (test helper).
pub fn is_supersequence<T: Eq>(sup: &[T], sub: &[T]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|x| it.any(|y| y == x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_scs(a: &[u32], b: &[u32], expect_len: usize) {
        let m = merge_pair(a, b, 1000);
        assert!(m.exact);
        assert!(is_supersequence(&m.merged, a), "supersequence of a");
        assert!(is_supersequence(&m.merged, b), "supersequence of b");
        assert_eq!(m.merged.len(), expect_len, "SCS length");
    }

    #[test]
    fn identical_sequences() {
        let a = [1, 2, 3];
        check_scs(&a, &a, 3);
        let m = merge_pair(&a, &a, 10);
        assert_eq!(m.distance, 0);
        assert_eq!(m.lcs, 3);
    }

    #[test]
    fn disjoint_sequences() {
        check_scs(&[1, 2], &[3, 4], 4);
    }

    #[test]
    fn classic_example() {
        // ABCABBA vs CBABAC (Myers' paper): D = 5, LCS = 4, SCS = 9.
        let a = [b'A', b'B', b'C', b'A', b'B', b'B', b'A'];
        let b = [b'C', b'B', b'A', b'B', b'A', b'C'];
        let m = merge_pair(&a, &b, 100);
        assert!(m.exact);
        assert_eq!(m.distance, 5);
        assert_eq!(m.lcs, 4);
        assert!(is_supersequence(&m.merged, &a));
        assert!(is_supersequence(&m.merged, &b));
        assert_eq!(m.merged.len(), 9);
    }

    #[test]
    fn empty_inputs() {
        let m = merge_pair::<u32>(&[], &[1, 2], 10);
        assert_eq!(m.merged, vec![1, 2]);
        let m = merge_pair::<u32>(&[9], &[], 10);
        assert_eq!(m.merged, vec![9]);
        let m = merge_pair::<u32>(&[], &[], 10);
        assert!(m.merged.is_empty());
        assert_eq!(m.distance, 0);
    }

    #[test]
    fn single_insertion() {
        check_scs(&[1, 2, 3, 4], &[1, 2, 9, 3, 4], 5);
    }

    #[test]
    fn loop_trip_count_difference() {
        // Same loop executed 5 vs 7 times: SCS = 7 iterations.
        let a: Vec<u32> = std::iter::repeat_n([10, 11], 5).flatten().collect();
        let b: Vec<u32> = std::iter::repeat_n([10, 11], 7).flatten().collect();
        check_scs(&a, &b, 14);
    }

    #[test]
    fn budget_exceeded_falls_back() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (100..200).collect();
        let m = merge_pair(&a, &b, 10);
        assert!(!m.exact);
        assert!(is_supersequence(&m.merged, &a));
        assert!(is_supersequence(&m.merged, &b));
        assert_eq!(m.merged.len(), 200);
    }

    #[test]
    fn long_similar_sequences() {
        let a: Vec<u32> = (0..5000).map(|i| i % 37).collect();
        let mut b = a.clone();
        b[1000] = 999;
        b.insert(3000, 888);
        let m = merge_pair(&a, &b, 100);
        assert!(m.exact);
        assert!(m.distance <= 3);
        assert!(is_supersequence(&m.merged, &a));
        assert!(is_supersequence(&m.merged, &b));
    }
}
