//! Criterion benchmarks for the cohort pipeline and the banking cohort
//! path end-to-end on the SIMT engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use rhythm_banking::prelude::*;
use rhythm_core::pipeline::{uniform_arrivals, Pipeline, PipelineConfig};
use rhythm_core::service::TableService;
use rhythm_simt::gpu::{Gpu, GpuConfig};

fn bench_pipeline_sim(c: &mut Criterion) {
    let config = PipelineConfig {
        cohort_size: 64,
        read_batch: 64,
        formation_timeout_s: 1e-3,
        reader_timeout_s: 1e-3,
        pool_contexts: 8,
        device_slots: 32,
        parser_instances: 1,
    };
    let pipeline = Pipeline::new(TableService::uniform(4, 2), config);
    let arrivals = uniform_arrivals(4096, 1e6, &[0, 1, 2, 3]);
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("sim_4096_requests", |bench| {
        bench.iter(|| pipeline.run(std::hint::black_box(&arrivals)))
    });
    g.finish();
}

fn bench_banking_cohort(c: &mut Criterion) {
    let workload = Workload::build();
    let store = BankStore::generate(64, 5);
    let gpu = Gpu::new(GpuConfig::gtx_titan());
    let opts = CohortOptions {
        session_capacity: 512,
        ..Default::default()
    };
    let mut g = c.benchmark_group("banking");
    g.sample_size(10);
    g.throughput(Throughput::Elements(32));
    g.bench_function("login_cohort_32", |bench| {
        bench.iter_batched(
            || {
                let mut sessions = SessionArrayHost::new(512, opts.session_salt);
                let mut generator = RequestGenerator::new(64, 3);
                let reqs = generator.uniform(RequestType::Login, 32, &mut sessions);
                (sessions, reqs)
            },
            |(mut sessions, reqs)| {
                run_cohort(&workload, &store, &mut sessions, &reqs, &gpu, &opts).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cohort_pool(c: &mut Criterion) {
    use rhythm_core::CohortPool;
    c.bench_function("cohort/fill_and_release_64", |bench| {
        bench.iter_batched(
            || CohortPool::<u32>::new(4, 64),
            |mut pool| {
                let id = pool.acquire().unwrap();
                for i in 0..64 {
                    pool.get_mut(id).add(i, 7, 0.0).unwrap();
                }
                pool.get_mut(id).launch().unwrap();
                std::hint::black_box(pool.get_mut(id).release().unwrap());
                pool
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline_sim, bench_banking_cohort, bench_cohort_pool
}
criterion_main!(benches);
