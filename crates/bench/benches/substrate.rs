//! Criterion microbenchmarks for the substrate crates: SIMT execution,
//! HTTP parsing, transpose, trace merging, and the session array.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use rhythm_banking::prelude::*;
use rhythm_http::HttpRequest;
use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::gpu::{Gpu, GpuConfig};
use rhythm_simt::ir::{BinOp, ProgramBuilder};
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_simt::transpose::{transpose_col_to_row, transpose_row_to_col};
use rhythm_trace::merge_traces;

fn bench_simt_kernel(c: &mut Criterion) {
    // A small arithmetic kernel over 256 lanes.
    let mut b = ProgramBuilder::new("axpy");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    let n = b.imm(64);
    b.for_loop(n, |b, i| {
        let v = b.ld_global_word(addr, 0);
        let nv = b.bin(BinOp::Add, v, i);
        b.st_global_word(addr, 0, nv);
    });
    b.halt();
    let kernel = b.build().unwrap();
    let gpu = Gpu::new(GpuConfig::gtx_titan());
    let pool = ConstPool::new();

    let mut g = c.benchmark_group("simt");
    g.throughput(Throughput::Elements(256 * 64));
    g.bench_function("axpy_256x64", |bench| {
        bench.iter_batched(
            || DeviceMemory::new(256 * 4),
            |mut mem| {
                gpu.launch(&kernel, &LaunchConfig::new(256, []), &mut mem, &pool)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_simt_workers(c: &mut Criterion) {
    // The same kernel at a heavier lane count, swept across the warp
    // worker pool. Results are bit-identical at every worker count; only
    // host wall-clock changes (and only on multi-core hosts).
    let mut b = ProgramBuilder::new("axpy");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    let n = b.imm(64);
    b.for_loop(n, |b, i| {
        let v = b.ld_global_word(addr, 0);
        let nv = b.bin(BinOp::Add, v, i);
        b.st_global_word(addr, 0, nv);
    });
    b.halt();
    let kernel = b.build().unwrap();
    let pool = ConstPool::new();
    let lanes = 4096u32;

    let mut g = c.benchmark_group("simt_workers");
    g.throughput(Throughput::Elements(lanes as u64 * 64));
    for workers in [1u32, 2, 4, 8] {
        let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(workers));
        g.bench_function(&format!("axpy_4096x64/w{workers}"), |bench| {
            bench.iter_batched(
                || DeviceMemory::new(lanes as usize * 4),
                |mut mem| {
                    gpu.launch(&kernel, &LaunchConfig::new(lanes, []), &mut mem, &pool)
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_http_parse(c: &mut Criterion) {
    let raw: &[u8] = b"POST /bank/bill_pay.php HTTP/1.1\r\nHost: bank.example.com\r\nCookie: SID=123456789\r\nUser-Agent: SPECWeb/2009\r\nContent-Length: 17\r\n\r\nuserid=42&a=19999";
    let mut g = c.benchmark_group("http");
    g.throughput(Throughput::Bytes(raw.len() as u64));
    g.bench_function("parse_post", |bench| {
        bench.iter(|| HttpRequest::parse(std::hint::black_box(raw)).unwrap())
    });
    g.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let rows = 256usize;
    let cols = 1024usize;
    let src: Vec<u8> = (0..rows * cols).map(|i| i as u8).collect();
    let mut g = c.benchmark_group("transpose");
    g.throughput(Throughput::Bytes((rows * cols) as u64));
    g.bench_function("host_roundtrip_256x1024", |bench| {
        let mut dst = vec![0u8; rows * cols];
        let mut back = vec![0u8; rows * cols];
        bench.iter(|| {
            transpose_row_to_col(std::hint::black_box(&src), &mut dst, rows, cols);
            transpose_col_to_row(&dst, &mut back, rows, cols);
        })
    });
    g.finish();
}

fn bench_trace_merge(c: &mut Criterion) {
    let base: Vec<u32> = (0..2000).map(|i| i % 29).collect();
    let traces: Vec<Vec<u32>> = (0..4)
        .map(|k: usize| {
            let mut t = base.clone();
            t.insert(500 * (k + 1) % t.len(), 900 + k as u32);
            t
        })
        .collect();
    c.bench_function("trace/merge_4x2000", |bench| {
        bench.iter(|| merge_traces(std::hint::black_box(&traces), 10_000))
    });
}

fn bench_session_array(c: &mut Criterion) {
    c.bench_function("session/insert_lookup_remove_1024", |bench| {
        bench.iter_batched(
            || SessionArrayHost::new(4096, 0xAB),
            |mut s| {
                let mut toks = Vec::with_capacity(1024);
                for u in 0..1024 {
                    toks.push(s.insert(u).unwrap());
                }
                for &t in &toks {
                    std::hint::black_box(s.lookup(t));
                }
                for &t in &toks {
                    s.remove(t);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_banking_native(c: &mut Criterion) {
    let store = BankStore::generate(64, 1);
    c.bench_function("banking/native_account_summary", |bench| {
        bench.iter_batched(
            || {
                let mut s = SessionArrayHost::new(256, 0xCD);
                let t = s.insert(7).unwrap();
                (s, t)
            },
            |(mut s, t)| {
                handle_native(
                    &BankingRequest::new(RequestType::AccountSummary, t, [7, 0, 0, 0]),
                    &store,
                    &mut s,
                )
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simt_kernel,
              bench_simt_workers,
              bench_http_parse,
              bench_transpose,
              bench_trace_merge,
              bench_session_array,
              bench_banking_native
}
criterion_main!(benches);
