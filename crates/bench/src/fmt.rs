//! Plain-text table rendering for experiment output.

/// Render an aligned text table: a header row, a rule, then data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a throughput in K requests/second.
pub fn kreqs(v: f64) -> String {
    format!("{:.0}", v / 1000.0)
}

/// Format seconds in the most readable unit.
pub fn time_s(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2} s")
    } else if v >= 1e-3 {
        format!("{:.2} ms", v * 1e3)
    } else if v >= 1e-6 {
        format!("{:.1} µs", v * 1e6)
    } else {
        format!("{:.0} ns", v * 1e9)
    }
}

/// Format a ratio with two decimals and a trailing ×.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("22"));
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert_eq!(widths[0], widths[2], "aligned");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(kreqs(1_535_000.0), "1535");
        assert_eq!(time_s(0.024), "24.00 ms");
        assert_eq!(time_s(5e-6), "5.0 µs");
        assert_eq!(time_s(2.5), "2.50 s");
        assert_eq!(ratio(4.0), "4.00x");
    }
}
