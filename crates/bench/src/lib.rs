//! # rhythm-bench
//!
//! The experiment harness: one binary per table/figure of the Rhythm
//! paper (see DESIGN.md §4 for the experiment index), built on shared
//! measurement machinery:
//!
//! * [`measure`] — scalar (CPU-model) instruction counts and SIMT cohort
//!   measurements for the Titan A/B/C variants;
//! * [`latency`] — end-to-end latency via the `rhythm-core` pipeline fed
//!   with measured kernel latencies;
//! * [`fmt`] — plain-text table rendering.
//!
//! Run e.g. `cargo run --release -p rhythm-bench --bin table3_main`.

#![warn(missing_docs)]

pub mod fmt;
pub mod latency;
pub mod measure;
