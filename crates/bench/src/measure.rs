//! Shared measurement machinery for the experiment harness.
//!
//! All experiments are built from two primitives:
//!
//! * **scalar runs** of single requests (CPU model): dynamic instruction
//!   counts feed the calibrated CPU presets;
//! * **cohort runs** on the SIMT engine (GPU model): per-stage kernel
//!   latencies, transactions and divergence feed the Titan platform
//!   models.
//!
//! Cohorts are measured at [`MEASURE_COHORT`] lanes and scaled to the
//! paper's 4096 analytically — per-request stage cost is constant above a
//! few warps (verified by `cohort_size` sweeps), so this keeps simulation
//! time manageable without changing any conclusion.

use std::collections::HashMap;

use rhythm_banking::prelude::*;
use rhythm_platform::pcie::{titan_a_bytes_per_request, PcieModel};
use rhythm_platform::presets::{TitanPlatform, TitanPreset};
use rhythm_platform::PlatformResult;
use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::gpu::{Gpu, GpuConfig};
use rhythm_simt::mem::DeviceMemory;
use rhythm_simt::stats::KernelStats;
use rhythm_simt::transpose::{build_transpose_kernel, transpose_launch_lanes, TILE};

/// Cohort size used for device measurements (scaled analytically to the
/// paper's operating point).
pub const MEASURE_COHORT: u32 = 512;
/// The paper's cohort size.
pub const PAPER_COHORT: u32 = 4096;
/// Session-array salt used across the harness.
pub const SALT: u32 = 0x5EED_0001;
/// Bank users in the measurement store.
pub const USERS: u32 = 256;

/// The measurement context.
#[derive(Debug)]
pub struct Harness {
    /// Compiled kernels.
    pub workload: Workload,
    /// Bank store.
    pub store: BankStore,
    /// The simulated device.
    pub gpu: Gpu,
}

impl Harness {
    /// Standard harness (GTX Titan, 256 users, seed 2014).
    pub fn new() -> Self {
        Harness {
            workload: Workload::build(),
            store: BankStore::generate(USERS, 2014),
            gpu: Gpu::new(GpuConfig::gtx_titan()),
        }
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-type scalar (CPU) measurement.
#[derive(Clone, Debug)]
pub struct ScalarMeasurement {
    /// Request type.
    pub ty: RequestType,
    /// Mean dynamic IR instructions per request.
    pub instructions: f64,
    /// Mean response body bytes (unpadded).
    pub body_bytes: f64,
}

/// Measure mean scalar instructions per request for every type.
pub fn scalar_measurements(h: &Harness, samples: u32) -> Vec<ScalarMeasurement> {
    RequestType::ALL
        .iter()
        .map(|&ty| {
            let mut sessions = SessionArrayHost::new(4096, SALT);
            let mut generator = RequestGenerator::new(USERS, 1000 + ty.id() as u64);
            let mut instr = 0u64;
            let mut body = 0u64;
            for _ in 0..samples {
                let req = generator.one(ty, &mut sessions);
                let r = run_request_scalar(&h.workload, &h.store, &mut sessions, &req, false)
                    .expect("scalar run");
                instr += r.stats.instructions;
                let text = String::from_utf8_lossy(&r.response);
                let body_start = text.find("\n\n").map(|p| p + 2).unwrap_or(0);
                body += (r.response.len() - body_start) as u64;
            }
            ScalarMeasurement {
                ty,
                instructions: instr as f64 / samples as f64,
                body_bytes: body as f64 / samples as f64,
            }
        })
        .collect()
}

/// Workload-average scalar instructions (Table 2 mix weighted).
pub fn workload_avg_instructions(ms: &[ScalarMeasurement]) -> f64 {
    ms.iter()
        .map(|m| m.instructions * m.ty.info().mix_percent / 100.0)
        .sum()
}

/// Per-type device measurement for one Titan variant.
#[derive(Clone, Debug)]
pub struct TitanTypeResult {
    /// Request type.
    pub ty: RequestType,
    /// Device-resident time per cohort, seconds (all kernels incl.
    /// transposes chargeable to this variant).
    pub device_time_per_cohort: f64,
    /// Compute-side throughput (before any bus bound), req/s.
    pub compute_tput: f64,
    /// Final throughput after the variant's bus bound, req/s.
    pub tput: f64,
    /// Per-stage `(name, seconds)` at the measurement cohort.
    pub stage_times: Vec<(String, f64)>,
    /// Aggregate kernel stats over the cohort's process stages.
    pub stats: KernelStats,
    /// Bytes per request over PCIe (Titan A accounting).
    pub pcie_bytes: f64,
}

/// Measure one type under a Titan variant at `cohort` lanes.
pub fn titan_type_measurement(
    h: &Harness,
    ty: RequestType,
    variant: TitanPlatform,
    cohort: u32,
) -> TitanTypeResult {
    let mut sessions = SessionArrayHost::new(4 * cohort, SALT);
    let mut generator = RequestGenerator::new(USERS, 7000 + ty.id() as u64);
    let reqs = generator.uniform(ty, cohort as usize, &mut sessions);

    let opts = CohortOptions {
        transposed: true,
        backend: match variant {
            TitanPlatform::A => BackendMode::Host,
            _ => BackendMode::Device,
        },
        session_capacity: 4 * cohort,
        session_salt: SALT,
        skip_parser: false,
        workers: None,
        verify: true,
        plan_cache: true,
        pack: true,
        sanitize: false,
    };
    let mut s = sessions.clone();
    let result =
        run_cohort(&h.workload, &h.store, &mut s, &reqs, &h.gpu, &opts).expect("cohort run");

    // Sustained (steady-state) kernel costs: with 8 cohorts in flight the
    // device pipeline is full, so throughput follows aggregate issue and
    // DRAM bandwidth, not one cohort's critical path.
    let mut stage_times: Vec<(String, f64)> = result
        .launches
        .iter()
        .map(|(n, r)| (n.clone(), h.gpu.sustained_time(&r.stats)))
        .collect();
    let mut stats = KernelStats::default();
    for (_, r) in &result.launches {
        stats.merge(&r.stats);
    }

    // Request-buffer transpose: arrivals are row-major; the parser wants
    // them transposed (every variant pays this).
    let req_t = transpose_time(&h.gpu, cohort, rhythm_banking::layout::REQBUF_BYTES);
    stage_times.push(("reqbuf_transpose".into(), req_t));

    // Backend-data transposes: only Titan A moves backend text to/from
    // the row-major host side.
    if variant == TitanPlatform::A {
        let breq_t = transpose_time(&h.gpu, cohort, rhythm_banking::layout::BREQ_BYTES);
        let bresp_t = transpose_time(&h.gpu, cohort, rhythm_banking::layout::BRESP_BYTES);
        let n = ty.backend_requests() as f64;
        stage_times.push(("backend_transposes".into(), n * (breq_t + bresp_t)));
    }

    // Response transpose: A and B pay it on the device; C offloads it
    // (paper §5.3.2).
    if variant != TitanPlatform::C {
        let resp_t = transpose_time(&h.gpu, cohort, ty.response_buffer_bytes());
        stage_times.push(("response_transpose".into(), resp_t));
    }

    let device_time_per_cohort: f64 = stage_times.iter().map(|(_, t)| t).sum();
    let compute_tput = cohort as f64 / device_time_per_cohort;

    let pcie_bytes = titan_a_bytes_per_request(ty.response_buffer_bytes(), ty.backend_requests());
    let tput = match variant {
        TitanPlatform::A => PcieModel::gen3().achieved(compute_tput, pcie_bytes),
        _ => compute_tput,
    };

    TitanTypeResult {
        ty,
        device_time_per_cohort,
        compute_tput,
        tput,
        stage_times,
        stats,
        pcie_bytes,
    }
}

/// Device time of a `rows × cols` byte transpose under the *optimized*
/// transpose the paper builds on (Ruetsch & Micikevicius, "Optimizing Matrix Transpose in CUDA"): vectorized
/// accesses make it bandwidth-bound — one read plus one write of the
/// matrix at DRAM speed, with a modest compute floor (two instructions
/// per 4-byte vector). Our pedagogical IR transpose kernel
/// ([`transpose_time_simulated`]) is byte-granular and loop-heavy, which
/// a production CUDA kernel would not be; using it directly would
/// overstate the transpose by ~50x.
pub fn transpose_time(gpu: &Gpu, rows: u32, cols: u32) -> f64 {
    let c = gpu.config();
    let bytes = rows as f64 * cols as f64;
    let memory_s = 2.0 * bytes / c.dram_bw;
    let warp_insts = bytes * 2.0 / (4.0 * 32.0);
    let compute_s = warp_insts / (c.sm_count as f64 * c.issue_width) / c.clock_hz;
    memory_s.max(compute_s) + c.launch_overhead_s
}

/// Device time of the IR transpose kernel, measured on a bounded matrix
/// and scaled linearly in tiles (kept for ablations and correctness
/// tests; see [`transpose_time`]).
pub fn transpose_time_simulated(gpu: &Gpu, rows: u32, cols: u32) -> f64 {
    let (mrows, mcols) = (rows.min(64), cols.min(1024));
    let kernel = build_transpose_kernel();
    let n = (mrows * mcols) as usize;
    let mut mem = DeviceMemory::new(2 * n);
    let lanes = transpose_launch_lanes(mrows, mcols);
    let mut cfg = LaunchConfig::new(lanes, vec![0, n as u32, mrows, mcols]);
    cfg.shared_bytes = TILE * TILE;
    let res = gpu
        .launch(&kernel, &cfg, &mut mem, &rhythm_simt::ConstPool::new())
        .expect("transpose measurement");

    let measured_tiles = (mrows / TILE) as u64 * (mcols / TILE) as u64;
    let target_tiles = (rows / TILE) as u64 * (cols / TILE) as u64;
    let f = target_tiles as f64 / measured_tiles as f64;
    let scaled = KernelStats {
        lanes: rows * cols / TILE,
        warps: (target_tiles * TILE as u64 / 32) as u32,
        warp_instructions: (res.stats.warp_instructions as f64 * f) as u64,
        lane_instructions: (res.stats.lane_instructions as f64 * f) as u64,
        mem_accesses: (res.stats.mem_accesses as f64 * f) as u64,
        mem_transactions: (res.stats.mem_transactions as f64 * f) as u64,
        dram_bytes: (res.stats.dram_bytes as f64 * f) as u64,
        const_replays: 0,
        atomic_serializations: 0,
        warp_cycles: (res.stats.warp_cycles as f64 * f) as u64,
        max_warp_cycles: res.stats.max_warp_cycles,
        divergence: res.stats.divergence.clone(),
    };
    gpu.sustained_time(&scaled)
}

/// Workload-level Titan result: weighted-harmonic-mean throughput plus a
/// per-type table.
#[derive(Clone, Debug)]
pub struct TitanResult {
    /// Variant measured.
    pub variant: TitanPlatform,
    /// Workload throughput at the paper cohort size, req/s.
    pub tput: f64,
    /// Per-type measurements (at [`MEASURE_COHORT`], scaled).
    pub per_type: Vec<TitanTypeResult>,
}

/// Measure a Titan variant across all 14 types and combine.
pub fn titan_result(h: &Harness, variant: TitanPlatform) -> TitanResult {
    let per_type: Vec<TitanTypeResult> = RequestType::ALL
        .iter()
        .map(|&ty| titan_type_measurement(h, ty, variant, MEASURE_COHORT))
        .collect();
    let map: HashMap<RequestType, f64> = per_type.iter().map(|r| (r.ty, r.tput)).collect();
    let tput = rhythm_banking::types::weighted_harmonic_mean(|ty| map[&ty]);
    TitanResult {
        variant,
        tput,
        per_type,
    }
}

/// Convert a Titan measurement into a design-space platform result with
/// the paper's power figures and a pipeline-modelled latency.
pub fn titan_platform_result(r: &TitanResult, latency_s: f64) -> PlatformResult {
    let preset = TitanPreset::of(r.variant);
    PlatformResult {
        name: preset.name.clone(),
        throughput: r.tput,
        latency_s,
        idle_w: preset.idle_w,
        wall_w: preset.wall_w,
    }
}

/// CPU platform results from scalar instruction measurements.
///
/// The presets' effective instruction rates are calibrated in the
/// paper's x86 instruction units; our measurements are IR instructions,
/// which are "denser" (one IR op does less than an average x86
/// instruction of the paper's C build). The unit conversion anchors the
/// workload-average to the paper's 429,563 while keeping our measured
/// per-type *shape*.
pub fn cpu_platform_results(ms: &[ScalarMeasurement]) -> Vec<PlatformResult> {
    use rhythm_platform::presets::{CpuPreset, PAPER_AVG_INSTRUCTIONS};
    let scale = PAPER_AVG_INSTRUCTIONS / workload_avg_instructions(ms);
    let per_type: HashMap<RequestType, f64> =
        ms.iter().map(|m| (m.ty, m.instructions * scale)).collect();
    CpuPreset::all()
        .into_iter()
        .map(|p| {
            let tput =
                rhythm_banking::types::weighted_harmonic_mean(|ty| p.throughput(per_type[&ty]));
            PlatformResult {
                name: p.name.clone(),
                throughput: tput,
                latency_s: p.latency_s(PAPER_AVG_INSTRUCTIONS),
                idle_w: p.idle_w,
                wall_w: p.wall_w,
            }
        })
        .collect()
}
