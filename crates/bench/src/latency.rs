//! Pipeline-level latency modelling: feed measured kernel latencies into
//! the `rhythm-core` discrete-event pipeline and read off end-to-end
//! request latency (Table 3's latency column).

use rhythm_banking::types::{RequestType, TABLE2};
use rhythm_core::pipeline::{Pipeline, PipelineConfig};
use rhythm_core::service::Service;
use rhythm_core::PipelineReport;
use rhythm_platform::presets::TitanPlatform;

use crate::measure::{TitanResult, MEASURE_COHORT, PAPER_COHORT};

/// A [`Service`] whose latencies come from measured kernel runs.
#[derive(Clone, Debug)]
pub struct MeasuredService {
    /// Per key: per-request process-stage times (seconds).
    stage_per_req: Vec<Vec<f64>>,
    /// Per key: per-request backend-round time.
    backend_per_req: Vec<f64>,
    /// Per-request parse time (incl. request-buffer transpose).
    parse_per_req: f64,
    /// Per key: per-request post-process (transpose/copy-out) time.
    response_per_req: Vec<f64>,
    /// Fixed kernel launch overhead.
    overhead: f64,
}

impl MeasuredService {
    /// Build from a Titan measurement.
    pub fn from_titan(result: &TitanResult) -> Self {
        let n = MEASURE_COHORT as f64;
        let mut stage_per_req = vec![Vec::new(); 14];
        let mut backend_per_req = vec![0.0f64; 14];
        let mut response_per_req = vec![0.0f64; 14];
        let mut parse_sum = 0.0;
        let mut parse_cnt = 0u32;

        for tr in &result.per_type {
            let key = tr.ty.id() as usize;
            for (name, t) in &tr.stage_times {
                let per_req = t / n;
                if name == "parser" || name == "reqbuf_transpose" {
                    parse_sum += per_req;
                    parse_cnt += 1;
                } else if name == "device_backend" || name == "backend_transposes" {
                    backend_per_req[key] += per_req;
                } else if name == "response_transpose" {
                    response_per_req[key] += per_req;
                } else {
                    stage_per_req[key].push(per_req);
                }
            }
            if result.variant == TitanPlatform::A {
                // Host backend round trip over PCIe: 1 KB out, 4 KB back
                // per request at 12 GB/s plus a fixed service time.
                backend_per_req[key] += (1024.0 + 4096.0) / 12e9;
                // Response copy-out over PCIe.
                response_per_req[key] += tr.ty.response_buffer_bytes() as f64 / 12e9;
            }
        }
        MeasuredService {
            stage_per_req,
            backend_per_req,
            // parse_sum holds parser + reqbuf-transpose entries (two per
            // type); the mean per-request parse cost is the per-type sum.
            parse_per_req: parse_sum / (parse_cnt as f64 / 2.0).max(1.0),
            response_per_req,
            overhead: 5e-6,
        }
    }
}

impl Service for MeasuredService {
    fn stages(&self, key: u32) -> u32 {
        self.stage_per_req[key as usize].len() as u32
    }

    fn parse_latency(&self, batch: u32) -> f64 {
        self.overhead + self.parse_per_req * batch as f64
    }

    fn stage_latency(&self, key: u32, stage: u32, cohort: u32) -> f64 {
        self.overhead + self.stage_per_req[key as usize][stage as usize] * cohort as f64
    }

    fn backend_latency(&self, key: u32, _stage: u32, cohort: u32) -> f64 {
        let rounds = self.stages(key).saturating_sub(1).max(1) as f64;
        50e-6 + self.backend_per_req[key as usize] / rounds * cohort as f64
    }

    fn response_latency(&self, key: u32, cohort: u32) -> f64 {
        self.overhead + self.response_per_req[key as usize] * cohort as f64
    }
}

/// Mixed-traffic arrival schedule following the Table 2 distribution.
pub fn mixed_arrivals(count: u64, rate: f64, seed: u64) -> Vec<(f64, u32)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let x: f64 = rng.gen_range(0.0..100.0);
            let mut acc = 0.0;
            let mut ty = RequestType::Login;
            for info in &TABLE2 {
                acc += info.mix_percent;
                if x < acc {
                    ty = info.ty;
                    break;
                }
            }
            (i as f64 / rate, ty.id())
        })
        .collect()
}

/// Run the pipeline at a fraction of the measured throughput and report.
pub fn pipeline_report(result: &TitanResult, load_fraction: f64, requests: u64) -> PipelineReport {
    pipeline_report_traced(result, load_fraction, requests, &rhythm_obs::NoopRecorder)
}

/// [`pipeline_report`] with a [`Recorder`](rhythm_obs::Recorder): stage
/// spans, cohort FSM transitions, and latency histograms land in `rec`
/// (virtual-time clock). The returned report is identical to the
/// untraced run.
pub fn pipeline_report_traced<R: rhythm_obs::Recorder + ?Sized>(
    result: &TitanResult,
    load_fraction: f64,
    requests: u64,
    rec: &R,
) -> PipelineReport {
    let service = MeasuredService::from_titan(result);
    let config = PipelineConfig {
        cohort_size: PAPER_COHORT,
        read_batch: PAPER_COHORT,
        formation_timeout_s: 20e-3,
        reader_timeout_s: 10e-3,
        // Mixed traffic over 14 types needs more contexts than the
        // paper's single-type-in-isolation runs (8): rare types hold a
        // context until their formation timeout.
        pool_contexts: 16,
        device_slots: 32,
        parser_instances: 1,
    };
    let pipeline = Pipeline::new(service, config);
    let arrivals = mixed_arrivals(requests, result.tput * load_fraction, 99);
    pipeline.run_traced(&arrivals, rec)
}

/// Mean end-to-end latency at 80 % load — the Table 3 latency estimate.
pub fn titan_latency_s(result: &TitanResult) -> f64 {
    pipeline_report(result, 0.8, 300_000).latency.mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::TitanResult;
    use rhythm_simt::stats::KernelStats;

    /// A synthetic single-type Titan measurement for unit testing.
    fn synthetic(variant: TitanPlatform) -> TitanResult {
        let per_type = RequestType::ALL
            .iter()
            .map(|&ty| crate::measure::TitanTypeResult {
                ty,
                device_time_per_cohort: 1e-3,
                compute_tput: 1e6,
                tput: 1e6,
                stage_times: vec![
                    ("parser".to_string(), 10e-6),
                    ("reqbuf_transpose".to_string(), 5e-6),
                    (format!("{ty}_stage0"), 40e-6),
                    ("device_backend".to_string(), 20e-6),
                    (format!("{ty}_response"), 400e-6),
                    ("response_transpose".to_string(), 100e-6),
                ],
                stats: KernelStats::default(),
                pcie_bytes: 32768.0,
            })
            .collect();
        TitanResult {
            variant,
            tput: 1e6,
            per_type,
        }
    }

    #[test]
    fn measured_service_maps_stage_names() {
        let svc = MeasuredService::from_titan(&synthetic(TitanPlatform::B));
        for ty in RequestType::ALL {
            let key = ty.id();
            assert_eq!(svc.stages(key), 2, "{ty}: stage0 + response");
            // stage latency scales with cohort
            let l1 = svc.stage_latency(key, 0, 512);
            let l2 = svc.stage_latency(key, 0, 4096);
            assert!(l2 > 7.0 * l1 && l2 < 9.0 * l1);
            assert!(svc.backend_latency(key, 0, 4096) > 0.0);
            assert!(svc.response_latency(key, 4096) > 0.0);
        }
        assert!(svc.parse_latency(4096) > svc.parse_latency(1));
    }

    #[test]
    fn titan_a_adds_pcie_costs() {
        let b = MeasuredService::from_titan(&synthetic(TitanPlatform::B));
        let a = MeasuredService::from_titan(&synthetic(TitanPlatform::A));
        let key = RequestType::AccountSummary.id();
        assert!(
            a.backend_latency(key, 0, 4096) > b.backend_latency(key, 0, 4096),
            "host backend pays the bus"
        );
        assert!(a.response_latency(key, 4096) > b.response_latency(key, 4096));
    }

    #[test]
    fn mixed_arrivals_follow_rate_and_mix() {
        let a = mixed_arrivals(10_000, 1e6, 42);
        assert_eq!(a.len(), 10_000);
        assert!((a.last().unwrap().0 - 9999.0 / 1e6).abs() < 1e-9);
        let logins = a.iter().filter(|(_, ty)| *ty == 0).count() as f64;
        assert!((logins / 100.0 - 28.17).abs() < 3.0, "login share");
        // Deterministic by seed.
        assert_eq!(a, mixed_arrivals(10_000, 1e6, 42));
        assert_ne!(a, mixed_arrivals(10_000, 1e6, 43));
    }

    #[test]
    fn pipeline_report_completes_all() {
        let r = pipeline_report(&synthetic(TitanPlatform::B), 0.5, 20_000);
        assert_eq!(r.completed, 20_000);
        assert!(r.latency.mean > 0.0);
        assert!(r.latency.p99 >= r.latency.p50);
    }
}
