//! **§5.1 extension** — static image cohorts.
//!
//! The paper implements image support (parser classifies, image cohorts
//! bypass the process stage) but does not evaluate throughput because
//! "image throughput is primarily dictated by network bandwidth since
//! there is no processing involved". We measure the device-side rate and
//! show exactly that: the network link, not the GPU, is the binding
//! constraint.

use rhythm_banking::images::{run_image_cohort, ImageStore};
use rhythm_banking::prelude::Workload;
use rhythm_bench::fmt::{kreqs, render_table};
use rhythm_platform::network::NetworkLink;
use rhythm_simt::gpu::{Gpu, GpuConfig};

fn main() {
    let workload = Workload::build();
    let images = ImageStore::generate(64, 1234);
    let gpu = Gpu::new(GpuConfig::gtx_titan());

    let cohort = 512usize;
    let requests: Vec<(u32, u32)> = (0..cohort as u32).map(|i| (i, i % 64)).collect();
    eprintln!("[images] running image cohort of {cohort} ...");
    let result = run_image_cohort(&workload, &images, &requests, &gpu, true).expect("cohort");

    let device_time =
        gpu.sustained_time(&result.parse.stats) + gpu.sustained_time(&result.image.stats);
    let device_tput = cohort as f64 / device_time;
    let avg_bytes: f64 =
        result.responses.iter().map(|r| r.len() as f64).sum::<f64>() / cohort as f64;

    let mut rows = vec![vec![
        "GPU (device-side)".to_string(),
        kreqs(device_tput),
        "compute".into(),
    ]];
    for link in [
        NetworkLink::gbe1(),
        NetworkLink::gbe10(),
        NetworkLink::gbe100(),
        NetworkLink::gbe400(),
    ] {
        let bound = link.request_bound(avg_bytes);
        rows.push(vec![link.name.clone(), kreqs(bound), "network".into()]);
    }

    println!(
        "\n§5.1: static image serving (avg response {:.1} KB)\n",
        avg_bytes / 1024.0
    );
    println!("{}", render_table(&["limit", "images K/s", "kind"], &rows));
    let gbe10 = NetworkLink::gbe10().request_bound(avg_bytes);
    println!(
        "device rate is {:.0}x a 10GbE link's carrying capacity — \"image throughput is",
        device_tput / gbe10
    );
    println!("primarily dictated by network bandwidth since there is no processing involved\"");
    println!("(which is also why the paper defers images to CDNs).");
}
