//! Similarity sub-key table: offline derivation and SIMD-efficiency
//! measurement (the cohort-formation half of §2.3's similarity premise).
//!
//! Two modes:
//!
//! * `--derive` — traces one representative request per (type,
//!   [`ParserFeatures`] combination) on the scalar executor, scores every
//!   combination pair by Myers-merge divergence over their common types
//!   (`rhythm-trace`, the Figure 2 metric), greedily clusters the
//!   combinations into at most `SUBKEY_SPACE` sub-keys, and prints the
//!   map as a Rust literal. `SubkeyTable::BUILTIN` in `rhythm-banking`
//!   is this tool's checked-in output; the run diffs the fresh
//!   derivation against it and exits nonzero on drift.
//! * default (measure) — generates the mixed corpus, forms same-type
//!   cohorts of one warp two ways (arrival order per type vs arrival
//!   order per composite sub-key), runs both populations through the
//!   real SIMT pipeline, and reports per-kernel SIMD efficiency on the
//!   divergent parser/stage0 kernels. The section is merged into
//!   `BENCH_simt.json` under `"subkeys"` (the file's other sections are
//!   preserved byte-for-byte).
//!
//! Flags: `--smoke` (small CI run, standalone out file, no drift gate),
//! `--corpus <n>`, `--out <path>`, `--derive`.

use std::collections::BTreeMap;

use rhythm_banking::prelude::*;
use rhythm_banking::subkey::{ParserFeatures, SubkeyTable, FEATURE_COMBOS, SUBKEY_SPACE};
use rhythm_bench::fmt::render_table;
use rhythm_bench::measure::{Harness, SALT, USERS};
use rhythm_simt::WARP_SIZE;
use rhythm_trace::merge_traces;

const CORPUS_SEED: u64 = 77;

struct Args {
    smoke: bool,
    derive: bool,
    corpus: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        derive: false,
        corpus: 4096,
        out: "BENCH_simt.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                parsed.smoke = true;
                parsed.corpus = 768;
            }
            "--derive" => parsed.derive = true,
            "--corpus" => {
                parsed.corpus = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--corpus needs a positive integer")
            }
            "--out" => parsed.out = args.next().expect("--out needs a path"),
            other => panic!(
                "unknown flag {other:?} (expected --smoke, --derive, --corpus <n>, --out <path>)"
            ),
        }
    }
    parsed
}

fn features_of(raw: &[u8]) -> ParserFeatures {
    let req = rhythm_http::HttpRequest::parse(raw).expect("generated request parses");
    ParserFeatures::of(&req)
}

/// Derive the combination → sub-key map from scalar-trace similarity.
fn derive(h: &Harness, corpus: usize) -> [u8; FEATURE_COMBOS] {
    // One representative request per (type, combination), from the same
    // generator distribution the server sees.
    let mut sessions = SessionArrayHost::new(4 * corpus.max(1024) as u32, SALT);
    let mut generator = RequestGenerator::new(USERS, CORPUS_SEED);
    let reqs = generator.mixed(corpus, &mut sessions);
    let mut reps: BTreeMap<(u32, usize), GeneratedRequest> = BTreeMap::new();
    for r in &reqs {
        reps.entry((r.ty.id(), features_of(&r.raw).index()))
            .or_insert_with(|| r.clone());
    }

    // Trace each representative (parser + process stages, block ids
    // offset per kernel, so length-dependent loops show as repeated
    // blocks).
    let mut traces: BTreeMap<(u32, usize), Vec<u32>> = BTreeMap::new();
    for ((ty, combo), req) in &reps {
        let r = run_request_scalar(&h.workload, &h.store, &mut sessions, req, true)
            .expect("scalar trace run");
        traces.insert((*ty, *combo), r.trace.expect("trace requested"));
    }

    eprintln!("[derive] {} (type, combo) representatives", traces.len());
    let present: Vec<usize> = {
        let mut combos: Vec<usize> = traces.keys().map(|(_, c)| *c).collect();
        combos.sort_unstable();
        combos.dedup();
        combos
    };

    // Pairwise divergence: mean (1 − relative-to-ideal) of the Myers
    // merge over the types both combinations occur in. Pairs with no
    // common type never merge.
    let dist = |a: usize, b: usize| -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for ty in RequestType::ALL {
            let (ta, tb) = (traces.get(&(ty.id(), a)), traces.get(&(ty.id(), b)));
            if let (Some(ta), Some(tb)) = (ta, tb) {
                let (_, rep) = merge_traces(&[ta.clone(), tb.clone()], 200_000);
                sum += 1.0 - rep.relative_to_ideal();
                n += 1;
            }
        }
        if n == 0 {
            f64::INFINITY
        } else {
            sum / n as f64
        }
    };

    // Greedy agglomerative clustering, average linkage over combination
    // distances, until the table fits SUBKEY_SPACE.
    let mut clusters: Vec<Vec<usize>> = present.iter().map(|&c| vec![c]).collect();
    let linkage = |x: &[usize], y: &[usize]| -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for &a in x {
            for &b in y {
                let d = dist(a, b);
                if d.is_finite() {
                    sum += d;
                    n += 1;
                }
            }
        }
        if n == 0 {
            f64::INFINITY
        } else {
            sum / n as f64
        }
    };
    // Merge until the table fits SUBKEY_SPACE, then keep merging pairs
    // whose traces are near-identical (divergence < MERGE_EPS): a split
    // that buys no SIMD efficiency only fragments cohort fill.
    const MERGE_EPS: f64 = 0.001;
    eprintln!("[derive] present combos: {present:?}");
    loop {
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                let d = linkage(&clusters[i], &clusters[j]);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let over = clusters.len() > SUBKEY_SPACE as usize;
        if !over && best.2 >= MERGE_EPS {
            break;
        }
        // All remaining pairs share no type: merge the two smallest
        // clusters so the table still fits.
        if over && !best.2.is_finite() {
            clusters.sort_by_key(|c| c.len());
        }
        let (i, j, d) = if best.2.is_finite() {
            best
        } else if over {
            (0, 1, f64::INFINITY)
        } else {
            break;
        };
        let merged = clusters.remove(j);
        eprintln!("[derive] merge {:?} + {merged:?} (d={d:.5})", clusters[i]);
        clusters[i].extend(merged);
        clusters[i].sort_unstable();
    }
    // Number clusters by their smallest member so the map is canonical.
    clusters.sort_by_key(|c| c[0]);

    let mut map = [u8::MAX; FEATURE_COMBOS];
    for (id, cluster) in clusters.iter().enumerate() {
        for &combo in cluster {
            map[combo] = id as u8;
        }
    }
    // Combinations the corpus never produces: nearest present
    // combination in feature space (length bucket dominates, then the
    // cookie scan, then parameter count), ties to the lower index.
    for i in 0..FEATURE_COMBOS {
        if map[i] != u8::MAX {
            continue;
        }
        let f = ParserFeatures::from_index(i);
        let nearest = present
            .iter()
            .min_by_key(|&&p| {
                let g = ParserFeatures::from_index(p);
                let d = (f.len_bucket.abs_diff(g.len_bucket) as usize) * 8
                    + usize::from(f.has_cookie != g.has_cookie) * 4
                    + f.param_count.abs_diff(g.param_count) as usize;
                (d, p)
            })
            .expect("corpus produced at least one combination");
        map[i] = map[*nearest];
    }
    map
}

/// Aggregate (warp, lane) instruction counts per kernel name for the
/// divergent front kernels over one grouped population.
///
/// Only full one-warp cohorts are measured: a partial warp pads its
/// inactive lanes, and that fill loss (the adaptive batcher's problem,
/// not the sub-key table's) would swamp the divergence signal this
/// experiment isolates. Dropped tails are reported alongside.
fn measure_grouping(
    h: &Harness,
    corpus: usize,
    subkeys: Option<&SubkeyTable>,
) -> (BTreeMap<String, (u64, u64)>, usize) {
    let capacity = 4 * corpus.max(1024) as u32;
    let mut sessions = SessionArrayHost::new(capacity, SALT);
    let mut generator = RequestGenerator::new(USERS, CORPUS_SEED);
    let reqs = generator.mixed(corpus, &mut sessions);

    // Cohorts exactly as the reactor forms them: arrival order within
    // each cohort key, one warp deep.
    let mut groups: BTreeMap<u32, Vec<GeneratedRequest>> = BTreeMap::new();
    for r in &reqs {
        let key = match subkeys {
            Some(t) => t.composite_key(r.ty, &features_of(&r.raw)),
            None => r.ty.id(),
        };
        groups.entry(key).or_default().push(r.clone());
    }

    let opts = CohortOptions {
        session_capacity: capacity,
        session_salt: SALT,
        ..Default::default()
    };
    let mut stats: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut dropped = 0usize;
    for cohort in groups.values().flat_map(|g| g.chunks(WARP_SIZE as usize)) {
        if cohort.len() < WARP_SIZE as usize {
            dropped += cohort.len();
            continue;
        }
        let res = run_cohort(&h.workload, &h.store, &mut sessions, cohort, &h.gpu, &opts)
            .expect("cohort run");
        for (name, launch) in &res.launches {
            if name != "parser" && !name.ends_with("_stage0") {
                continue;
            }
            let e = stats.entry(name.clone()).or_default();
            e.0 += launch.stats.warp_instructions;
            e.1 += launch.stats.lane_instructions;
        }
    }
    (stats, dropped)
}

fn efficiency(warp: u64, lane: u64) -> f64 {
    if warp == 0 {
        return 1.0;
    }
    lane as f64 / (warp as f64 * WARP_SIZE as f64)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Merge the `"subkeys"` section into the bench result file, replacing
/// any previous section and preserving the rest of the file.
fn merge_out(path: &str, section: &str) {
    let json = match std::fs::read_to_string(path) {
        Ok(text) => {
            let trimmed = text.trim_end();
            assert!(
                trimmed.ends_with('}'),
                "{path} does not look like a JSON object"
            );
            let base = match trimmed.find(",\"subkeys\":") {
                Some(i) => &trimmed[..i],
                None => &trimmed[..trimmed.len() - 1],
            };
            format!("{base},\"subkeys\":{section}}}")
        }
        Err(_) => format!("{{\"bench\":\"subkey_table\",\"subkeys\":{section}}}"),
    };
    std::fs::write(path, &json).expect("write result json");
}

fn main() {
    let args = parse_args();
    let h = Harness::new();

    if args.derive {
        let map = derive(&h, args.corpus.max(1024));
        println!("derived feature-combination → sub-key map ({FEATURE_COMBOS} entries):\n");
        print!("    [");
        for (i, s) in map.iter().enumerate() {
            if i % 8 == 0 {
                print!("\n        ");
            }
            print!("{s}, ");
        }
        println!("\n    ]\n");
        let drift = map != *SubkeyTable::BUILTIN.map();
        if drift {
            println!("BUILTIN table differs from this derivation:");
            println!("    derived:  {map:?}");
            println!("    builtin:  {:?}", SubkeyTable::BUILTIN.map());
        } else {
            println!("BUILTIN table matches this derivation.");
        }
        if drift && !args.smoke {
            std::process::exit(1);
        }
        return;
    }

    eprintln!(
        "[subkey] measuring {} requests, warp-deep cohorts, typed vs sub-keyed ...",
        args.corpus
    );
    let (base, base_dropped) = measure_grouping(&h, args.corpus, None);
    let (sub, sub_dropped) = measure_grouping(&h, args.corpus, Some(&SubkeyTable::BUILTIN));
    eprintln!(
        "[subkey] partial-warp tails dropped from measurement: typed {base_dropped},          sub-keyed {sub_dropped} of {} requests",
        args.corpus
    );

    let mut rows = Vec::new();
    let mut kernels_json = Vec::new();
    let mut tot = [(0u64, 0u64); 2];
    for (name, &(bw, bl)) in &base {
        let Some(&(sw, sl)) = sub.get(name) else {
            // Every sub-keyed cohort of this type fell below one warp
            // (tiny smoke corpora only).
            continue;
        };
        let (be, se) = (efficiency(bw, bl), efficiency(sw, sl));
        tot[0].0 += bw;
        tot[0].1 += bl;
        tot[1].0 += sw;
        tot[1].1 += sl;
        rows.push(vec![
            name.clone(),
            format!("{be:.4}"),
            format!("{se:.4}"),
            format!("{:+.2}%", (se / be - 1.0) * 100.0),
        ]);
        kernels_json.push(format!(
            "{{\"name\":\"{name}\",\"typed_eff\":{},\"subkeyed_eff\":{}}}",
            json_f(be),
            json_f(se)
        ));
    }
    let (be, se) = (
        efficiency(tot[0].0, tot[0].1),
        efficiency(tot[1].0, tot[1].1),
    );
    rows.push(vec![
        "TOTAL (parser + stage0)".into(),
        format!("{be:.4}"),
        format!("{se:.4}"),
        format!("{:+.2}%", (se / be - 1.0) * 100.0),
    ]);

    println!("\nSub-key cohorts: SIMD efficiency on the divergent front kernels\n");
    println!(
        "{}",
        render_table(
            &["kernel", "typed cohorts", "sub-keyed cohorts", "uplift"],
            &rows
        )
    );

    let section = format!(
        "{{\"corpus\":{},\"chunk\":{},\"subkey_space\":{},\"dropped_typed\":{base_dropped},\
         \"dropped_subkeyed\":{sub_dropped},\"typed_eff\":{},\"subkeyed_eff\":{},\
         \"uplift\":{},\"kernels\":[{}]}}",
        args.corpus,
        WARP_SIZE,
        SUBKEY_SPACE,
        json_f(be),
        json_f(se),
        json_f(se / be - 1.0),
        kernels_json.join(",")
    );
    merge_out(&args.out, &section);
    println!("wrote \"subkeys\" section to {}", args.out);

    if !args.smoke {
        assert!(
            se >= be,
            "sub-keyed cohorts must not lower front-kernel SIMD efficiency \
             (typed {be:.4}, sub-keyed {se:.4})"
        );
    }
}
