//! **Figure 9** — PCIe 3.0 limitations in Titan A for each request type.
//!
//! For every type: the throughput bound implied by PCIe 3.0 bandwidth
//! (12 GB/s over bytes moved per request) and the achieved throughput
//! (min of compute-side rate and the achievable fraction of the bound).
//! The paper observes 83–95 % of the bound across types.

use rhythm_banking::prelude::RequestType;
use rhythm_bench::fmt::{kreqs, render_table};
use rhythm_bench::measure::{titan_type_measurement, Harness, MEASURE_COHORT};
use rhythm_platform::pcie::PcieModel;
use rhythm_platform::presets::TitanPlatform;

fn main() {
    let h = Harness::new();
    let pcie = PcieModel::gen3();

    let mut rows = Vec::new();
    let mut bound_limited = 0;
    for ty in RequestType::ALL {
        eprintln!("[fig9] {ty} ...");
        let r = titan_type_measurement(&h, ty, TitanPlatform::A, MEASURE_COHORT);
        let bound = pcie.bound(r.pcie_bytes);
        let frac = r.tput / bound;
        if r.tput < r.compute_tput {
            bound_limited += 1;
        }
        rows.push(vec![
            ty.to_string(),
            format!("{:.1}", r.pcie_bytes / 1024.0),
            kreqs(bound),
            kreqs(r.compute_tput),
            kreqs(r.tput),
            format!("{:.0}%", frac * 100.0),
        ]);
    }

    println!("\nFigure 9: PCIe 3.0 limitations in Titan A");
    println!("(bound = 12 GB/s / bytes-per-request; achieved capped at 89% of bound)\n");
    println!(
        "{}",
        render_table(
            &[
                "request",
                "KB/req on bus",
                "PCIe bound K/s",
                "compute K/s",
                "achieved K/s",
                "% of bound"
            ],
            &rows
        )
    );
    println!(
        "types limited by the bus rather than compute: {bound_limited}/14 \
         (paper: all types, 83-95% of the PCIe bound)"
    );

    // What-if: PCIe 4.0 (paper §6.1.1 — "could increase Titan A's
    // throughput to 864K reqs/s … even at 25 GB/s, the PCIe bus is still
    // a bottleneck").
    let gen4 = PcieModel::gen4();
    let mut still_bound = 0;
    let mut tputs = Vec::new();
    for ty in RequestType::ALL {
        let r = titan_type_measurement(&h, ty, TitanPlatform::A, MEASURE_COHORT);
        let achieved = gen4.achieved(r.compute_tput, r.pcie_bytes);
        if achieved < r.compute_tput {
            still_bound += 1;
        }
        tputs.push((ty, achieved));
    }
    let map: std::collections::HashMap<_, _> = tputs.iter().cloned().collect();
    let wmean = rhythm_banking::types::weighted_harmonic_mean(|ty| map[&ty]);
    println!(
        "\nwhat-if PCIe 4.0: workload throughput {} K/s, {still_bound}/14 types still bus-bound",
        rhythm_bench::fmt::kreqs(wmean)
    );
    println!("paper: PCIe 4.0 could reach ~864K req/s but the bus remains the bottleneck");
}
