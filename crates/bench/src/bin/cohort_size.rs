//! **§6.4 "Cohort Size sensitivity"** — throughput, memory and formation
//! latency across cohort sizes.
//!
//! The paper sweeps 256–8192 and picks 4096 as the balance between
//! throughput (more work per launch amortizes overheads) and memory /
//! formation latency. We measure device throughput at increasing sizes on
//! the SIMT engine and model formation latency with the pipeline.

use rhythm_banking::prelude::*;
use rhythm_bench::fmt::{kreqs, render_table, time_s};
use rhythm_bench::latency::{pipeline_report, titan_latency_s};
use rhythm_bench::measure::{titan_result, titan_type_measurement, Harness};
use rhythm_platform::presets::TitanPlatform;

fn main() {
    let h = Harness::new();
    let ty = RequestType::AccountSummary;

    // Device-side throughput for one representative type at increasing
    // cohort sizes (larger sizes simulated directly; the trend is what
    // matters).
    println!("cohort-size sensitivity ({ty} on Titan B)\n");
    let mut rows = Vec::new();
    for cohort in [64u32, 128, 256, 512, 1024, 2048] {
        eprintln!("[cohort] measuring cohort {cohort} ...");
        let r = titan_type_measurement(&h, ty, TitanPlatform::B, cohort);
        let layout = rhythm_banking::layout::CohortLayout::new(
            cohort,
            ty.response_buffer_bytes(),
            0,
            0,
            0,
            true,
        );
        rows.push(vec![
            format!("{cohort}"),
            kreqs(r.tput),
            format!("{:.1}", layout.session_base as f64 / 1e6),
            time_s(r.device_time_per_cohort),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["cohort", "tput K/s", "MB/cohort", "device time/cohort"],
            &rows
        )
    );
    println!("paper: larger cohorts improve throughput but cost memory; 4096 is the balance\n");

    // Formation latency at 1.5 M req/s arrival for various cohort sizes,
    // via the pipeline with Titan B stage latencies.
    eprintln!("[cohort] measuring Titan B for the pipeline model ...");
    let tr = titan_result(&h, TitanPlatform::B);
    let _ = titan_latency_s(&tr);
    let mut rows = Vec::new();
    for cohort in [256u32, 1024, 4096, 8192] {
        let mut report = {
            use rhythm_bench::latency::{mixed_arrivals, MeasuredService};
            use rhythm_core::pipeline::{Pipeline, PipelineConfig};
            let service = MeasuredService::from_titan(&tr);
            let config = PipelineConfig {
                cohort_size: cohort,
                read_batch: cohort,
                formation_timeout_s: 50e-3,
                reader_timeout_s: 10e-3,
                // Mixed traffic over 14 types needs more contexts than the
                // paper's single-type-in-isolation runs (8): rare types hold
                // a context until their formation timeout.
                pool_contexts: 16,
                device_slots: 32,
                parser_instances: 1,
            };
            let pipeline = Pipeline::new(service, config);
            let arrivals = mixed_arrivals(400_000, tr.tput * 0.8, 7);
            pipeline.run(&arrivals)
        };
        if report.completed == 0 {
            report.makespan_s = 0.0;
        }
        rows.push(vec![
            format!("{cohort}"),
            time_s(report.latency.mean),
            time_s(report.latency.p99),
            format!("{:.2}", report.mean_fill),
            format!("{}", report.timeout_launches),
        ]);
    }
    println!("pipeline latency at 80% of Titan B load, by cohort size:\n");
    println!(
        "{}",
        render_table(
            &[
                "cohort",
                "mean latency",
                "p99",
                "mean fill",
                "timeout launches"
            ],
            &rows
        )
    );
    println!("paper: at ~1M req/s arrival rates, cohort formation times are negligible;");
    println!("       larger cohorts raise response latency");
    let _ = pipeline_report(&tr, 0.5, 10_000); // exercised for the doc example
}
