//! **§6.4 "Parser divergence"** — parser throughput on uniform vs mixed
//! cohorts.
//!
//! The paper measures 556 µs parser latency (7.4 M req/s) for a mixed
//! cohort of 4096 and argues the parser stays far from the bottleneck
//! even with full divergence. We run the real parser kernel both ways.

use rhythm_banking::prelude::*;
use rhythm_bench::fmt::{kreqs, render_table, time_s};
use rhythm_bench::measure::{Harness, SALT, USERS};
use rhythm_simt::WARP_SIZE;

fn main() {
    let h = Harness::new();
    let cohort = 2048usize;

    let opts = CohortOptions {
        session_capacity: 4 * cohort as u32,
        session_salt: SALT,
        ..Default::default()
    };

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (label, mixed) in [("uniform (login only)", false), ("mixed (Table 2)", true)] {
        let mut sessions = SessionArrayHost::new(4 * cohort as u32, SALT);
        let mut generator = RequestGenerator::new(USERS, 31);
        let reqs = if mixed {
            generator.mixed(cohort, &mut sessions)
        } else {
            generator.uniform(RequestType::Login, cohort, &mut sessions)
        };
        eprintln!("[parser] running {label} ...");
        let (res, parsed) = run_parser_only(&h.workload, &reqs, &h.gpu, &opts).expect("parser");
        // Verify correctness on the way.
        for (r, (ty_id, ..)) in reqs.iter().zip(&parsed) {
            assert_eq!(*ty_id, r.ty.id(), "parser must classify correctly");
        }
        let tput = cohort as f64 / res.time_s;
        rows.push(vec![
            label.to_string(),
            time_s(res.time_s),
            kreqs(tput),
            format!("{:.2}", res.stats.simd_efficiency(WARP_SIZE)),
            format!("{:.3}", res.stats.divergence.divergence_rate()),
        ]);
        results.push((label, res, tput));
    }

    println!("\n§6.4: parser divergence (cohort of {cohort})\n");
    println!(
        "{}",
        render_table(
            &[
                "cohort mix",
                "parser latency",
                "tput K/s",
                "SIMD efficiency",
                "divergent branch rate"
            ],
            &rows
        )
    );
    let slowdown = results[0].2 / results[1].2;
    println!("mixed-cohort slowdown vs uniform: {slowdown:.2}x");
    println!("paper: mixed parser still achieves 7.4M req/s (556 µs @4096) — fast enough;");
    println!("       Rhythm also allows multiple concurrent parsers to hide parser latency");
}
