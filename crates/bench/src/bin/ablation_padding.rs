//! **Ablation** — whitespace padding for lane alignment (paper §4.3.2).
//!
//! Rhythm pads every dynamic HTML fragment to the warp-wide maximum so
//! lane write pointers stay aligned and response-buffer writes coalesce.
//! This ablation compiles the response kernels *without* the padding
//! (output remains correct; pointers drift after the first dynamic
//! fragment) and measures the memory-system damage and the extra
//! reduction/padding work the mechanism costs.

use rhythm_banking::prelude::*;
use rhythm_bench::fmt::{render_table, time_s};
use rhythm_bench::measure::{Harness, SALT, USERS};
use rhythm_simt::gpu::Gpu;

fn response_stats(
    workload: &Workload,
    h: &Harness,
    ty: RequestType,
    cohort: usize,
) -> (f64, f64, f64) {
    let mut sessions = SessionArrayHost::new(4 * cohort as u32, SALT);
    let mut generator = RequestGenerator::new(USERS, 42 + ty.id() as u64);
    let reqs = generator.uniform(ty, cohort, &mut sessions);
    let opts = CohortOptions {
        session_capacity: 4 * cohort as u32,
        session_salt: SALT,
        ..Default::default()
    };
    let mut s = sessions.clone();
    let result = run_cohort(workload, &h.store, &mut s, &reqs, &h.gpu, &opts).expect("cohort");
    let (_, launch) = result
        .launches
        .iter()
        .find(|(n, _)| n.ends_with("_response"))
        .expect("response stage");
    let gpu: &Gpu = &h.gpu;
    (
        launch.stats.transactions_per_access(),
        gpu.sustained_time(&launch.stats),
        launch.stats.warp_instructions as f64,
    )
}

fn main() {
    let h = Harness::new();
    let padded = Workload::build_opts(true);
    let unpadded = Workload::build_opts(false);
    let cohort = 256;

    let mut rows = Vec::new();
    let mut worst_ratio: f64 = 0.0;
    for ty in [
        RequestType::Login,
        RequestType::AccountSummary,
        RequestType::BillPayStatusOutput,
        RequestType::Profile,
        RequestType::Logout,
    ] {
        eprintln!("[ablation] {ty} ...");
        let (tx_p, t_p, wi_p) = response_stats(&padded, &h, ty, cohort);
        let (tx_u, t_u, wi_u) = response_stats(&unpadded, &h, ty, cohort);
        worst_ratio = worst_ratio.max(tx_u / tx_p);
        rows.push(vec![
            ty.to_string(),
            format!("{tx_p:.2}"),
            format!("{tx_u:.2}"),
            format!("{:.2}x", tx_u / tx_p),
            time_s(t_p),
            time_s(t_u),
            format!("{:+.1}%", (wi_p / wi_u - 1.0) * 100.0),
        ]);
    }

    println!("\nablation: warp-alignment whitespace padding (response stage, cohort {cohort})\n");
    println!(
        "{}",
        render_table(
            &[
                "request",
                "tx/access padded",
                "tx/access unpadded",
                "coalescing damage",
                "time padded",
                "time unpadded",
                "instr cost of padding"
            ],
            &rows
        )
    );
    println!("padding costs a few percent of instructions (butterfly reductions + spaces)");
    println!("and buys up to {worst_ratio:.1}x fewer memory transactions per access — the paper's");
    println!("rationale for spending HTML whitespace on alignment (§4.3.2).");
}
