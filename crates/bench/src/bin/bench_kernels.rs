//! Per-kernel interpreter micro-throughput: legacy vs pre-decoded engine.
//!
//! Walks every banking kernel (parser, backend, image, and each request
//! type's process stages) in its real cohort launch environment — store
//! and session images loaded, request bytes written — and times repeated
//! launches of each kernel on the legacy masked engine and on the
//! pre-decoded warp-vectorized engine, from identical memory snapshots.
//! Execution uses one worker thread so the numbers are pure interpreter
//! throughput, not host parallelism.
//!
//! Emits `BENCH_simt.json` with per-kernel ops/s, warps/s, the
//! legacy→pre-decoded speedup, and the process-wide decode-cache hit rate,
//! plus a convergent-kernel speedup summary (the tentpole claim: the
//! convergent fast paths at least double interpreter warp throughput).
//!
//! The pre-decoded engine runs with sub-warp packing enabled (`--pack`,
//! default 4): up to four warps fuse into one gang wherever the plan's
//! static profile allows, on top of the wide-copy block stores. Every
//! timed launch is still bit-checked against the legacy engine's memory
//! image and stats, so the packed numbers are semantics-proven, not
//! trusted.
//!
//! Flags:
//!
//! * `--smoke` — small CI run (tiny cohort, few iterations) that checks
//!   the two engines stay bit-identical in every measured environment —
//!   packing included — and that the JSON is written; makes no speed
//!   assertions (debug builds and CI noise make those meaningless).
//! * `--cohort <n>` / `--iters <n>` — launch width and timing repetitions.
//! * `--pack <k>` — sub-warp packing width for the pre-decoded engine
//!   (1, 2, or 4; default 4; 1 disables packing).
//! * `--out <path>` — result file (default `BENCH_simt.json`).

use std::time::{Duration, Instant};

use rhythm_banking::backend::BankStore;
use rhythm_banking::genreq::RequestGenerator;
use rhythm_banking::kernels::Workload;
use rhythm_banking::layout::{CohortLayout, REQBUF_BYTES};
use rhythm_banking::session_array::SessionArrayHost;
use rhythm_banking::types::RequestType;
use rhythm_simt::exec::simt::{execute_simt_legacy_workers, execute_simt_workers};
use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_simt::{plan_cache_stats, plan_for, Program};

const SESSION_SALT: u32 = 0x5EED_0001;
const NUM_USERS: u32 = 2048;

struct Args {
    smoke: bool,
    cohort: u32,
    iters: u32,
    pack: u32,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        cohort: 1024,
        iters: 5,
        pack: 4,
        out: "BENCH_simt.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                parsed.smoke = true;
                parsed.cohort = 96;
                parsed.iters = 1;
            }
            "--cohort" => {
                parsed.cohort = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cohort needs a positive integer")
            }
            "--iters" => {
                parsed.iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer")
            }
            "--pack" => {
                parsed.pack = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|k| [1, 2, 4].contains(k))
                    .expect("--pack needs 1, 2, or 4")
            }
            "--out" => parsed.out = args.next().expect("--out needs a path"),
            other => panic!(
                "unknown flag {other:?} (expected --smoke, --cohort <n>, --iters <n>, \
                 --pack <k>, --out <path>)"
            ),
        }
    }
    parsed
}

/// One kernel measured in one concrete launch environment.
struct KernelRow {
    name: String,
    ty: String,
    warps: u32,
    warp_instructions: u64,
    lane_instructions: u64,
    simd_efficiency: f64,
    /// Launches per timed batch (calibrated inner repetitions); the
    /// reported times are the minimum batch over the outer iterations.
    runs: u32,
    legacy_s: f64,
    plan_s: f64,
}

impl KernelRow {
    fn legacy_warps_per_s(&self) -> f64 {
        self.warps as f64 * self.runs as f64 / self.legacy_s
    }
    fn plan_warps_per_s(&self) -> f64 {
        self.warps as f64 * self.runs as f64 / self.plan_s
    }
    fn plan_ops_per_s(&self) -> f64 {
        self.lane_instructions as f64 * self.runs as f64 / self.plan_s
    }
    fn speedup(&self) -> f64 {
        self.legacy_s / self.plan_s
    }
    /// Kernels that run ≥99% of lane-slots at full occupancy — i.e. the
    /// convergent fast paths handle essentially every issue. Divergent
    /// kernels spend much of their time in masked per-lane execution,
    /// where both engines do the same work by construction.
    fn convergent(&self) -> bool {
        self.simd_efficiency > 0.99
    }
}

/// Time one launch of `run` from a clone of `snapshot`, excluding the
/// clone from the measurement, and check the run reproduces `expect`.
fn time_once(
    snapshot: &DeviceMemory,
    expect: &DeviceMemory,
    run: impl FnOnce(&mut DeviceMemory),
) -> Duration {
    let mut m = snapshot.clone();
    let t0 = Instant::now();
    run(&mut m);
    let elapsed = t0.elapsed();
    assert_eq!(
        m.as_bytes(),
        expect.as_bytes(),
        "engines diverged during timing"
    );
    elapsed
}

#[allow(clippy::too_many_arguments)] // one measurement's full context; a struct would be ceremony
fn measure_kernel(
    name: &str,
    ty: String,
    kernel: &Program,
    cfg: &LaunchConfig,
    pack: u32,
    pool: &ConstPool,
    snapshot: &DeviceMemory,
    iters: u32,
    calibrate: bool,
) -> KernelRow {
    // The requested pack width rides on the launch config; only the
    // pre-decoded engine's gang scheduler reads it (clamped by the plan's
    // static profile), the legacy engine is unconditionally unpacked.
    let mut pcfg = cfg.clone();
    pcfg.pack = pack;
    let cfg = &pcfg;
    // Reference run fixes the expected output and the stats, and checks
    // the engines agree before any timing happens.
    let mut mem_plan = snapshot.clone();
    let stats = execute_simt_workers(kernel, cfg, &mut mem_plan, pool, 1)
        .unwrap_or_else(|e| panic!("{ty}/{name} pre-decoded fault: {e}"));
    let mut mem_legacy = snapshot.clone();
    let legacy_stats = execute_simt_legacy_workers(kernel, cfg, &mut mem_legacy, pool, 1)
        .unwrap_or_else(|e| panic!("{ty}/{name} legacy fault: {e}"));
    assert_eq!(stats, legacy_stats, "{ty}/{name}: engine stats diverged");
    assert_eq!(
        mem_plan.as_bytes(),
        mem_legacy.as_bytes(),
        "{ty}/{name}: engine memory diverged"
    );

    // Calibrate inner repetitions so each timed sample covers at least
    // ~30 ms: sub-millisecond kernels are otherwise dominated by
    // scheduling noise. Interleave the engines each iteration so
    // machine-load drift hits both sides of the ratio equally.
    let inner = if calibrate {
        let probe = time_once(snapshot, &mem_plan, |m| {
            execute_simt_workers(kernel, cfg, m, pool, 1).unwrap();
        });
        ((0.03 / probe.as_secs_f64().max(1e-9)).ceil().min(1000.0) as u32).max(1)
    } else {
        1
    };
    // Each iteration times one batch of `inner` launches per engine; the
    // minimum batch across iterations is the least-interference sample,
    // the robust throughput estimator on a machine with background load.
    let mut legacy = Duration::MAX;
    let mut plan = Duration::MAX;
    for _ in 0..iters {
        let mut batch = Duration::ZERO;
        for _ in 0..inner {
            batch += time_once(snapshot, &mem_plan, |m| {
                execute_simt_legacy_workers(kernel, cfg, m, pool, 1).unwrap();
            });
        }
        legacy = legacy.min(batch);
        let mut batch = Duration::ZERO;
        for _ in 0..inner {
            batch += time_once(snapshot, &mem_plan, |m| {
                execute_simt_workers(kernel, cfg, m, pool, 1).unwrap();
            });
        }
        plan = plan.min(batch);
    }
    let legacy_s = legacy.as_secs_f64();
    let plan_s = plan.as_secs_f64();

    KernelRow {
        name: name.to_string(),
        ty,
        warps: cfg.warps(),
        warp_instructions: stats.warp_instructions,
        lane_instructions: stats.lane_instructions,
        simd_efficiency: stats.simd_efficiency(32),
        runs: inner,
        legacy_s,
        plan_s,
    }
}

fn main() {
    let args = parse_args();
    let workload = Workload::build();
    let store = BankStore::generate(NUM_USERS, 1);
    let store_img = store.serialize_device();
    // Every non-login request pre-creates a session, and only the logout
    // cohort tears any down, so the table needs room for ~13 cohorts.
    let capacity = (16 * args.cohort).max(1024);

    // Pre-decode every kernel once so the timing loop measures execution,
    // not first-launch decode, and the cache-hit counters reflect reuse.
    let mut sessions = SessionArrayHost::new(capacity, SESSION_SALT);
    let mut generator = RequestGenerator::new(NUM_USERS, 0xBEC5);
    let mut rows: Vec<KernelRow> = Vec::new();

    for ty in RequestType::ALL {
        let reqs = generator.uniform(ty, args.cohort as usize, &mut sessions);
        let layout = CohortLayout::new(
            args.cohort,
            ty.response_buffer_bytes(),
            capacity,
            SESSION_SALT,
            store_img.len() as u32,
            true,
        );
        let mut mem = DeviceMemory::new(layout.total_bytes as usize);
        mem.load(layout.store_base, &store_img).unwrap();
        mem.load(layout.session_base, &sessions.to_device_bytes())
            .unwrap();
        for (lane, r) in reqs.iter().enumerate() {
            layout
                .write_lane(
                    &mut mem,
                    layout.reqbuf_base,
                    REQBUF_BYTES,
                    lane as u32,
                    &r.raw,
                )
                .unwrap();
        }
        let cfg = LaunchConfig {
            lanes: args.cohort,
            params: layout.params(),
            local_bytes: 64,
            shared_bytes: 1024,
            pack: args.pack,
            ..Default::default()
        };

        // The cohort runner's device-backend launch sequence; each kernel
        // is measured in the memory state it actually sees there, and
        // shared kernels (parser, backend) are measured once per type so
        // the report shows their behavior across environments.
        let stages = workload.stages_of(ty);
        let mut sequence = vec![("parser", &workload.parser)];
        let n_backend = stages.len() - 1;
        for (i, stage) in stages.iter().enumerate() {
            sequence.push((stage.name(), stage));
            if i < n_backend {
                sequence.push(("backend", &workload.backend));
            }
        }

        for (name, kernel) in sequence {
            let _ = plan_for(kernel); // warm the decode cache
            let measured = rows.iter().any(|r| r.name == kernel.name());
            if !measured {
                rows.push(measure_kernel(
                    kernel.name(),
                    ty.to_string(),
                    kernel,
                    &cfg,
                    args.pack,
                    &workload.pool,
                    &mem,
                    args.iters,
                    !args.smoke,
                ));
            }
            // Advance the cohort state for the next kernel's snapshot.
            execute_simt_workers(kernel, &cfg, &mut mem, &workload.pool, 1)
                .unwrap_or_else(|e| panic!("{:?}/{name} fault: {e}", ty));
        }

        // Later types generate tokens against the device's session state.
        let sess_bytes = mem
            .slice(
                layout.session_base,
                SessionArrayHost::device_bytes(capacity),
            )
            .unwrap();
        sessions = SessionArrayHost::from_device_bytes(sess_bytes, SESSION_SALT);
    }

    let cache = plan_cache_stats();
    let convergent: Vec<&KernelRow> = rows.iter().filter(|r| r.convergent()).collect();
    let min_speedup = convergent
        .iter()
        .map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    let mean_speedup = if convergent.is_empty() {
        f64::NAN
    } else {
        convergent.iter().map(|r| r.speedup()).sum::<f64>() / convergent.len() as f64
    };
    let mean_speedup_all = rows.iter().map(|r| r.speedup()).sum::<f64>() / rows.len() as f64;

    let mut kernels_json = Vec::new();
    for r in &rows {
        kernels_json.push(format!(
            "{{\"name\":\"{}\",\"type\":\"{}\",\"warps\":{},\"warp_instructions\":{},\
             \"lane_instructions\":{},\"simd_efficiency\":{},\"convergent\":{},\
             \"runs\":{},\"legacy_s\":{},\"plan_s\":{},\"legacy_warps_per_s\":{},\
             \"plan_warps_per_s\":{},\"plan_ops_per_s\":{},\"speedup\":{}}}",
            r.name,
            r.ty,
            r.warps,
            r.warp_instructions,
            r.lane_instructions,
            json_f(r.simd_efficiency),
            r.convergent(),
            r.runs,
            json_f(r.legacy_s),
            json_f(r.plan_s),
            json_f(r.legacy_warps_per_s()),
            json_f(r.plan_warps_per_s()),
            json_f(r.plan_ops_per_s()),
            json_f(r.speedup()),
        ));
    }
    let json = format!(
        "{{\"bench\":\"bench_kernels\",\"mode\":\"{}\",\"cohort\":{},\"iters\":{},\
         \"workers\":1,\"pack\":{},\"kernel_count\":{},\
         \"plan_cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{}}},\
         \"convergent_kernels\":{},\"convergent_min_speedup\":{},\
         \"convergent_mean_speedup\":{},\"mean_speedup_all\":{},\"kernels\":[{}]}}",
        if args.smoke { "smoke" } else { "full" },
        args.cohort,
        args.iters,
        args.pack,
        rows.len(),
        cache.hits,
        cache.misses,
        json_f(cache.hit_rate()),
        convergent.len(),
        json_f(min_speedup),
        json_f(mean_speedup),
        json_f(mean_speedup_all),
        kernels_json.join(",")
    );
    std::fs::write(&args.out, &json).expect("write result json");

    println!(
        "bench_kernels: {} kernels, cohort {}, {} iters (1 worker, pack {})",
        rows.len(),
        args.cohort,
        args.iters,
        args.pack
    );
    println!(
        "{:<22} {:>6} {:>9} {:>12} {:>12} {:>8}",
        "kernel", "eff", "warps", "legacy w/s", "plan w/s", "speedup"
    );
    for r in &rows {
        println!(
            "{:<22} {:>6.3} {:>9} {:>12.0} {:>12.0} {:>7.2}x",
            r.name,
            r.simd_efficiency,
            r.warps,
            r.legacy_warps_per_s(),
            r.plan_warps_per_s(),
            r.speedup()
        );
    }
    println!(
        "decode cache: {} hits / {} lookups ({:.1}% hit rate)",
        cache.hits,
        cache.lookups(),
        cache.hit_rate() * 100.0
    );
    println!(
        "convergent kernels ({}): min speedup {:.2}x, mean {:.2}x; all {} kernels mean {:.2}x -> {}",
        convergent.len(),
        min_speedup,
        mean_speedup,
        rows.len(),
        mean_speedup_all,
        args.out
    );

    assert!(
        cache.hit_rate() > 0.5,
        "decode cache should serve repeated launches (hit rate {:.2})",
        cache.hit_rate()
    );
    assert!(!rows.is_empty(), "no kernels measured");
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}
