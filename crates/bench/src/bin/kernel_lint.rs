//! Lint every banking kernel with the `rhythm-verify` static analyzer.
//!
//! Each kernel is checked against the same launch environment the cohort
//! runner uses (the [`CohortLayout`] parameter vector and memory extents
//! for its request type), so the diagnostics describe real launches, not
//! a synthetic context. Exits nonzero if any kernel has an
//! `Error`-severity finding — this is the CI gate.
//!
//! Each kernel also gets the analyzer's sub-warp packing verdict
//! ([`rhythm_verify::pack_width`]) in the same environments — the width
//! the cohort runner will actually launch with. The reported width is the
//! minimum over every environment the kernel can see, so CI gates packing
//! legality on exactly the analysis production uses.
//!
//! The effect-summary engine ([`rhythm_verify::effects`]) runs alongside:
//! each kernel's global read/write/atomic footprint — anchored to the
//! layout's declared regions — is joined across environments into the
//! `effects` column (`r`/`w`/`a` exact, uppercase claimed, `T` ⊤, `-`
//! absent), its lints (`effects-top-footprint` warning,
//! `effects-out-of-extent` error) merge into the diagnostics, and
//! `--effects-json` dumps the full per-kernel summaries plus the
//! session-writer verdict HyperQ grouping is scheduled from.
//!
//! Usage: `kernel_lint [--json] [--effects-json] [--cohort N] [--verbose]`

use std::collections::BTreeMap;
use std::process::ExitCode;

use rhythm_banking::backend::BankStore;
use rhythm_banking::kernels::Workload;
use rhythm_banking::layout::CohortLayout;
use rhythm_banking::types::RequestType;
use rhythm_simt::exec::AccessKind;
use rhythm_simt::ir::MemSpace;
use rhythm_verify::effects::{effect_lints, infer_effects, KernelEffects, SpaceFootprint};
use rhythm_verify::{pack_width, verify_program, Diagnostic, LaunchSpec, Report, Severity};

const DEFAULT_COHORT: u32 = 1024;
const SESSION_CAPACITY: u32 = 4096;
const SESSION_SALT: u32 = 0x5EED_0001;
const NUM_USERS: u32 = 2048;

fn main() -> ExitCode {
    let mut json = false;
    let mut effects_json = false;
    let mut verbose = false;
    let mut cohort = DEFAULT_COHORT;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--effects-json" => effects_json = true,
            "--verbose" => verbose = true,
            "--cohort" => {
                cohort = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cohort needs a positive integer");
            }
            "--help" | "-h" => {
                eprintln!("usage: kernel_lint [--json] [--effects-json] [--cohort N] [--verbose]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                return ExitCode::FAILURE;
            }
        }
    }

    let workload = Workload::build();
    let store_bytes = BankStore::generate(NUM_USERS, 1).serialize_device().len() as u32;

    // Lint each kernel against every launch environment it can actually
    // see (the layout differs per request type via the response slot
    // size), merging duplicate findings so shared kernels such as the
    // parser get one row. Effect summaries join across environments the
    // same way; the session-writer verdict is an OR (a kernel that writes
    // the session array in any environment is a writer).
    let mut merged: BTreeMap<String, Report> = BTreeMap::new();
    let mut packs: BTreeMap<String, u32> = BTreeMap::new();
    let mut effects: BTreeMap<String, KernelEffects> = BTreeMap::new();
    let mut session_writers: BTreeMap<String, bool> = BTreeMap::new();
    for ty in RequestType::ALL {
        let layout = CohortLayout::new(
            cohort,
            ty.response_buffer_bytes(),
            SESSION_CAPACITY,
            SESSION_SALT,
            store_bytes,
            true,
        );
        let spec = LaunchSpec {
            lanes: cohort,
            params: Some(layout.params()),
            global_bytes: Some(layout.total_bytes as u64),
            shared_bytes: Some(1024),
            local_bytes: Some(64),
            const_bytes: Some(workload.pool.len() as u64),
        };
        let regions = layout.regions();
        let (sess_lo, sess_hi) = layout.session_span();
        let programs = [&workload.parser, &workload.backend, &workload.image]
            .into_iter()
            .chain(workload.stages_of(ty).iter());
        for program in programs {
            let mut report = verify_program(program, &spec);
            report
                .diagnostics
                .extend(effect_lints(program, &spec, &regions));
            let pack = pack_width(program, &spec);
            packs
                .entry(report.program.clone())
                .and_modify(|p| *p = (*p).min(pack))
                .or_insert(pack);
            let fx = infer_effects(program, &spec, &regions);
            let writes_sessions = fx.mutates(MemSpace::Global, sess_lo, sess_hi);
            effects
                .entry(report.program.clone())
                .and_modify(|e| e.join(&fx))
                .or_insert_with(|| fx.clone());
            session_writers
                .entry(report.program.clone())
                .and_modify(|w| *w |= writes_sessions)
                .or_insert(writes_sessions);
            let entry = merged
                .entry(report.program.clone())
                .or_insert_with(|| Report {
                    program: report.program.clone(),
                    diagnostics: Vec::new(),
                });
            for d in report.diagnostics {
                if !entry.diagnostics.contains(&d) {
                    entry.diagnostics.push(d);
                }
            }
        }
    }

    let total_errors: usize = merged.values().map(|r| r.count(Severity::Error)).sum();
    if effects_json {
        print_effects_json(cohort, &effects, &session_writers);
    } else if json {
        print_json(cohort, &merged, &packs, &effects, total_errors);
    } else {
        print_table(cohort, &merged, &packs, &effects, total_errors, verbose);
    }
    if total_errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Compact global-footprint code: one character per access kind
/// (read/write/atomic) — `-` no accesses, lowercase all-exact regions,
/// uppercase some claimed (sanitizer-discharged) region, `T` ⊤.
fn effects_code(fx: &KernelEffects) -> String {
    let g = fx.space(MemSpace::Global);
    [AccessKind::Read, AccessKind::Write, AccessKind::Atomic]
        .into_iter()
        .map(|kind| {
            let fp = g.of(kind);
            let lower = match kind {
                AccessKind::Read => 'r',
                AccessKind::Write => 'w',
                AccessKind::Atomic => 'a',
            };
            if fp.is_top() {
                'T'
            } else if fp.is_empty() {
                '-'
            } else if fp.has_claimed() {
                lower.to_ascii_uppercase()
            } else {
                lower
            }
        })
        .collect()
}

fn print_table(
    cohort: u32,
    merged: &BTreeMap<String, Report>,
    packs: &BTreeMap<String, u32>,
    effects: &BTreeMap<String, KernelEffects>,
    total_errors: usize,
    verbose: bool,
) {
    println!("kernel lint (cohort={cohort}, {} kernels)", merged.len());
    println!(
        "{:<24} {:>6} {:>8} {:>6} {:>5} {:>7}",
        "kernel", "errors", "warnings", "infos", "pack", "effects"
    );
    for report in merged.values() {
        let code = effects
            .get(&report.program)
            .map(effects_code)
            .unwrap_or_else(|| "???".to_string());
        println!(
            "{:<24} {:>6} {:>8} {:>6} {:>5} {:>7}",
            report.program,
            report.count(Severity::Error),
            report.count(Severity::Warning),
            report.count(Severity::Info),
            packs.get(&report.program).copied().unwrap_or(1),
            code,
        );
        for d in &report.diagnostics {
            if d.severity == Severity::Info && !verbose {
                continue;
            }
            println!("    {d}");
        }
    }
    println!(
        "result: {total_errors} error(s) across {} kernel(s)",
        merged.len()
    );
}

fn print_json(
    cohort: u32,
    merged: &BTreeMap<String, Report>,
    packs: &BTreeMap<String, u32>,
    effects: &BTreeMap<String, KernelEffects>,
    total_errors: usize,
) {
    let mut programs = Vec::new();
    for report in merged.values() {
        let diags: Vec<String> = report.diagnostics.iter().map(diag_json).collect();
        let code = effects
            .get(&report.program)
            .map(effects_code)
            .unwrap_or_else(|| "???".to_string());
        programs.push(format!(
            "{{\"name\":{},\"errors\":{},\"warnings\":{},\"infos\":{},\"pack\":{},\
             \"effects\":{},\"diagnostics\":[{}]}}",
            json_str(&report.program),
            report.count(Severity::Error),
            report.count(Severity::Warning),
            report.count(Severity::Info),
            packs.get(&report.program).copied().unwrap_or(1),
            json_str(&code),
            diags.join(",")
        ));
    }
    println!(
        "{{\"cohort\":{cohort},\"total_errors\":{total_errors},\"programs\":[{}]}}",
        programs.join(",")
    );
}

/// Dump the joined effect summary of every kernel: the global footprint
/// per access kind as `"top"` or a region list, whether any space is ⊤,
/// and the session-writer verdict HyperQ stream grouping schedules from.
fn print_effects_json(
    cohort: u32,
    effects: &BTreeMap<String, KernelEffects>,
    session_writers: &BTreeMap<String, bool>,
) {
    let mut programs = Vec::new();
    for (name, fx) in effects {
        let g = fx.space(MemSpace::Global);
        let kind_json = |fp: &SpaceFootprint| -> String {
            match fp.regions() {
                None => "\"top\"".to_string(),
                Some(regions) => {
                    let rs: Vec<String> = regions
                        .iter()
                        .map(|r| {
                            format!(
                                "{{\"lo\":{},\"hi\":{},\"lane_stride\":{},\"gid_stride\":{},\
                                 \"width\":{},\"exact\":{}}}",
                                r.lo, r.hi, r.lane_stride, r.gid_stride, r.width, r.exact
                            )
                        })
                        .collect();
                    format!("[{}]", rs.join(","))
                }
            }
        };
        programs.push(format!(
            "{{\"name\":{},\"top\":{},\"session_writer\":{},\"effects\":{},\
             \"global\":{{\"reads\":{},\"writes\":{},\"atomics\":{}}}}}",
            json_str(name),
            fx.is_top_anywhere(),
            session_writers.get(name).copied().unwrap_or(false),
            json_str(&effects_code(fx)),
            kind_json(&g.reads),
            kind_json(&g.writes),
            kind_json(&g.atomics),
        ));
    }
    println!(
        "{{\"cohort\":{cohort},\"kernels\":{},\"programs\":[{}]}}",
        programs.len(),
        programs.join(",")
    );
}

fn diag_json(d: &Diagnostic) -> String {
    format!(
        "{{\"severity\":{},\"rule\":{},\"block\":{},\"op_index\":{},\"message\":{}}}",
        json_str(&d.severity.to_string()),
        json_str(d.rule),
        d.block.map_or("null".to_string(), |b| b.to_string()),
        d.op_index.map_or("null".to_string(), |i| i.to_string()),
        json_str(&d.message),
    )
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
