//! **§6.3** — System resource requirements: network bandwidth per Titan
//! platform and device memory capacity.

use rhythm_banking::prelude::RequestType;
use rhythm_banking::session_array::{SessionArrayHost, NODE_BYTES};
use rhythm_bench::fmt::render_table;
use rhythm_bench::measure::{titan_result, Harness, PAPER_COHORT};
use rhythm_platform::network::{compressed_bits_per_s, required_bits_per_s, NetworkLink};
use rhythm_platform::presets::TitanPlatform;

fn main() {
    let h = Harness::new();

    // Average response buffer, weighted by the mix (paper: 26.4 KB).
    let avg_resp: f64 = RequestType::ALL
        .iter()
        .map(|t| t.response_buffer_bytes() as f64 * t.info().mix_percent / 100.0)
        .sum();
    println!("§6.3: system resource requirements\n");
    println!("-- network bandwidth --");
    let mut rows = Vec::new();
    for variant in [TitanPlatform::A, TitanPlatform::B, TitanPlatform::C] {
        eprintln!("[resources] measuring Titan {variant:?} ...");
        let tr = titan_result(&h, variant);
        let raw = required_bits_per_s(tr.tput, 512.0, avg_resp);
        let compressed = compressed_bits_per_s(tr.tput, 512.0, avg_resp, 0.8);
        let link = [
            NetworkLink::gbe10(),
            NetworkLink::gbe100(),
            NetworkLink::gbe400(),
        ]
        .into_iter()
        .find(|l| l.bits_per_s >= compressed)
        .map(|l| l.name)
        .unwrap_or_else(|| "beyond 400GbE".into());
        rows.push(vec![
            format!("Titan {variant:?}"),
            format!("{:.0}K", tr.tput / 1e3),
            format!("{:.0}", raw / 1e9),
            format!("{:.0}", compressed / 1e9),
            link,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "platform",
                "tput req/s",
                "raw Gb/s",
                "80%-compressed Gb/s",
                "smallest link"
            ],
            &rows
        )
    );
    println!("paper: Titan A 67 Gb/s, B 258 Gb/s, C 517 Gb/s raw; C fits 100GbE compressed\n");

    println!("-- device memory capacity --");
    let active_sessions: u64 = 16 * 1024 * 1024;
    let alloc_sessions: u64 = 64 * 1024 * 1024;
    let ours_active = active_sessions * NODE_BYTES as u64;
    let ours_alloc = alloc_sessions * NODE_BYTES as u64;
    println!(
        "session array: {} B/node (ours) — 16M active = {:.2} GB, 64M allocated (25% collision target) = {:.1} GB",
        NODE_BYTES,
        ours_active as f64 / 1e9,
        ours_alloc as f64 / 1e9
    );
    println!("paper: 40 B/session — 640 MB active, 2.5 GB allocated");

    // Per-cohort buffer memory at the paper's cohort size.
    let mut rows = Vec::new();
    let mut worst = 0u64;
    for ty in RequestType::ALL {
        let layout = rhythm_banking::layout::CohortLayout::new(
            PAPER_COHORT,
            ty.response_buffer_bytes(),
            0,
            0,
            0,
            true,
        );
        // Exclude sessions/store: those are shared, not per cohort.
        let per_cohort = layout.session_base as u64;
        worst = worst.max(per_cohort);
        rows.push(vec![
            ty.to_string(),
            format!("{}", ty.response_buffer_bytes() / 1024),
            format!("{:.1}", per_cohort as f64 / 1e6),
        ]);
    }
    println!(
        "\n{}",
        render_table(&["request", "resp buf KB", "MB per 4096-cohort"], &rows)
    );
    let budget: f64 = 6e9 - ours_alloc as f64; // GTX Titan memory minus sessions
    println!(
        "worst-case cohort footprint {:.1} MB -> {} cohorts of 4096 fit in the Titan's remaining {:.1} GB",
        worst as f64 / 1e6,
        (budget / worst as f64) as u64,
        budget / 1e9
    );
    println!("paper: limited to 8 inflight cohorts of 4096 on the 6 GB GTX Titan");

    let _ = SessionArrayHost::device_bytes(1); // keep the type exercised
}
