//! **Figure 2** — Potential speedup of the Banking workload on data
//! parallel hardware, relative to ideal speedup.
//!
//! Methodology (paper §2.3): collect dynamic basic-block traces for
//! several independent requests of each type, merge them pairwise with a
//! Myers diff (the paper uses UNIX `diff`), and report
//! `Σ|trace| / |merged| / N` — 1.0 means perfectly identical executions.

use rhythm_banking::prelude::*;
use rhythm_bench::fmt::render_table;
use rhythm_bench::measure::{Harness, SALT, USERS};
use rhythm_trace::merge_traces;

fn main() {
    let h = Harness::new();
    // Paper: "between 2 and 6 traces per request are merged, with most
    // requests having 5 unique traces".
    let traces_per_type = 5usize;

    let mut rows = Vec::new();
    let mut min_rel: f64 = 1.0;
    for ty in RequestType::ALL {
        let mut sessions = SessionArrayHost::new(1024, SALT);
        let mut generator = RequestGenerator::new(USERS, 500 + ty.id() as u64);
        let mut traces = Vec::new();
        for _ in 0..traces_per_type {
            let req = generator.one(ty, &mut sessions);
            let r = run_request_scalar(&h.workload, &h.store, &mut sessions, &req, true)
                .expect("scalar trace run");
            traces.push(r.trace.expect("trace requested"));
        }
        let (_, rep) = merge_traces(&traces, 200_000);
        let rel = rep.relative_to_ideal();
        min_rel = min_rel.min(rel);
        rows.push(vec![
            ty.to_string(),
            format!("{}", rep.traces),
            format!("{}", rep.total_blocks),
            format!("{}", rep.merged_blocks),
            format!("{:.2}", rep.speedup()),
            format!("{:.3}", rel),
            if rep.exact { "yes" } else { "no" }.into(),
        ]);
    }

    println!("Figure 2: request-similarity speedup relative to ideal");
    println!("(5 randomized traces per type, Myers-diff SCS merge)\n");
    println!(
        "{}",
        render_table(
            &[
                "request",
                "traces",
                "total blocks",
                "merged blocks",
                "speedup",
                "rel. to ideal",
                "exact"
            ],
            &rows
        )
    );
    println!("paper: \"nearly linear speedup (i.e., nearly identical executions) for each request type\"");
    println!("ours:  minimum relative-to-ideal across types = {min_rel:.3}");
}
