//! **Figure 1** — the server design space.
//!
//! The paper's motivating sketch: throughput (normalized to an x86 core)
//! vs energy efficiency (normalized to an ARM core), with the ideal
//! design at or above both. We regenerate the figure's points from the
//! calibrated presets, using the paper's own instruction count so this
//! binary needs no simulation.

use rhythm_bench::fmt::{ratio, render_table};
use rhythm_platform::efficiency::{design_points, PlatformResult, PowerBasis};
use rhythm_platform::presets::{CpuPreset, TitanPlatform, TitanPreset, PAPER_AVG_INSTRUCTIONS};

fn main() {
    let mut results: Vec<PlatformResult> = CpuPreset::all()
        .into_iter()
        .map(|p| PlatformResult {
            name: p.name.clone(),
            throughput: p.throughput(PAPER_AVG_INSTRUCTIONS),
            latency_s: p.latency_s(PAPER_AVG_INSTRUCTIONS),
            idle_w: p.idle_w,
            wall_w: p.wall_w,
        })
        .collect();
    for variant in [TitanPlatform::A, TitanPlatform::B, TitanPlatform::C] {
        let t = TitanPreset::of(variant);
        results.push(PlatformResult {
            name: t.name.clone(),
            throughput: t.paper_tput,
            latency_s: t.paper_latency_s,
            idle_w: t.idle_w,
            wall_w: t.wall_w,
        });
    }

    let pts = design_points(
        &results,
        "Core i7 8 workers",
        "ARM A9 2 workers",
        PowerBasis::Wall,
    );
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                ratio(p.efficiency_norm),
                ratio(p.throughput_norm),
                if p.in_desired_range { "ideal" } else { "" }.into(),
            ]
        })
        .collect();
    println!("Figure 1: server design space (x = perf/W vs ARM, y = throughput vs x86)\n");
    println!(
        "{}",
        render_table(
            &["design", "efficiency (norm)", "throughput (norm)", ""],
            &rows
        )
    );
    println!("the ideal design achieves throughput >= x86 at efficiency >= ARM (upper right)");
}
