//! **Figure 8 (a, b)** — Throughput–efficiency design space for wall and
//! dynamic power.
//!
//! Throughput is normalized to the Core i7 with 8 workers, efficiency
//! (requests/Joule) to the ARM A9 with 2 workers. The "desired operating
//! range" is the region at or above both baselines; the paper's headline
//! is that Titan B/C land there (B marginally on dynamic power) while
//! Titan A does not.

use rhythm_bench::fmt::{ratio, render_table};
use rhythm_bench::latency::titan_latency_s;
use rhythm_bench::measure::{
    cpu_platform_results, scalar_measurements, titan_platform_result, titan_result, Harness,
};
use rhythm_platform::efficiency::{design_points, PowerBasis};
use rhythm_platform::presets::TitanPlatform;

fn main() {
    let h = Harness::new();
    eprintln!("[fig8] measuring CPUs ...");
    let ms = scalar_measurements(&h, 10);
    let mut results = cpu_platform_results(&ms);
    for variant in [TitanPlatform::A, TitanPlatform::B, TitanPlatform::C] {
        eprintln!("[fig8] measuring Titan {variant:?} ...");
        let tr = titan_result(&h, variant);
        let lat = titan_latency_s(&tr);
        results.push(titan_platform_result(&tr, lat));
    }

    for (basis, label) in [
        (PowerBasis::Wall, "Figure 8a: wall power"),
        (PowerBasis::Dynamic, "Figure 8b: dynamic power"),
    ] {
        let pts = design_points(&results, "Core i7 8 workers", "ARM A9 2 workers", basis);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.name.clone(),
                    ratio(p.efficiency_norm),
                    ratio(p.throughput_norm),
                    if p.in_desired_range { "yes" } else { "" }.into(),
                ]
            })
            .collect();
        println!("\n{label} (x = efficiency vs A9-2w, y = throughput vs i7-8w)\n");
        println!(
            "{}",
            render_table(
                &["platform", "eff (norm)", "tput (norm)", "desired range"],
                &rows
            )
        );
    }
}
