//! Worker-pool scaling sweep for the SIMT interpreter.
//!
//! Runs the same banking cohort at several `GpuConfig::workers` settings,
//! verifies that responses, session state, and merged kernel stats are
//! bit-identical to the serial (`workers = 1`) run, and reports the host
//! wall-clock speedup. The worker count is a simulation-speed knob only:
//! modelled device latencies never change.
//!
//! Note: speedup over serial requires real cores. On a single-core host
//! the sweep still validates determinism but reports ~1.0x throughout.
//!
//! Flags:
//!
//! * `--trace <out.json>` — after the sweep, re-run one cohort with the
//!   `rhythm-obs` recorder attached and write a Chrome trace-event file
//!   (loadable in Perfetto / `chrome://tracing`) with one track per SIMT
//!   worker plus the virtual-time device track; a plain-text summary with
//!   histograms goes to stdout.
//! * `--cohort <n>` — override the cohort size (default 1024); useful for
//!   quick smoke runs in CI.

use std::time::Instant;

use rhythm_banking::prelude::*;
use rhythm_bench::fmt::render_table;
use rhythm_obs::TraceRecorder;
use rhythm_simt::gpu::{Gpu, GpuConfig};

const SALT: u32 = 0x5EED_0001;
const DEFAULT_COHORT: usize = 1024;
const REPS: usize = 4;

struct RunOutcome {
    responses: Vec<Vec<u8>>,
    sessions: Vec<u8>,
    stats_fingerprint: String,
    elapsed_s: f64,
}

fn run_at(workers: u32, workload: &Workload, store: &BankStore, cohort: usize) -> RunOutcome {
    let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(workers));
    let opts = CohortOptions {
        session_capacity: 4 * cohort as u32,
        session_salt: SALT,
        ..Default::default()
    };
    let mut sessions0 = SessionArrayHost::new(opts.session_capacity, opts.session_salt);
    let mut generator = RequestGenerator::new(4 * cohort as u32, 7);
    // Uniform cohort: run_cohort drives one type-specific pipeline.
    let reqs = generator.uniform(RequestType::AccountSummary, cohort, &mut sessions0);

    let mut responses = Vec::new();
    let mut sessions = sessions0.clone();
    let mut stats_fingerprint = String::new();
    let start = Instant::now();
    for rep in 0..REPS {
        let mut s = sessions0.clone();
        let result = run_cohort(workload, store, &mut s, &reqs, &gpu, &opts).expect("cohort");
        if rep == 0 {
            responses = result.responses;
            stats_fingerprint = format!("{:?}", result.launches);
            sessions = s;
        }
    }
    RunOutcome {
        responses,
        sessions: sessions.to_device_bytes(),
        stats_fingerprint,
        elapsed_s: start.elapsed().as_secs_f64() / REPS as f64,
    }
}

/// Re-run one cohort with the recorder attached and export the timeline.
fn export_trace(
    path: &str,
    workers: u32,
    workload: &Workload,
    store: &BankStore,
    cohort: usize,
    baseline: &RunOutcome,
) {
    let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(workers));
    let opts = CohortOptions {
        session_capacity: 4 * cohort as u32,
        session_salt: SALT,
        ..Default::default()
    };
    let mut sessions = SessionArrayHost::new(opts.session_capacity, opts.session_salt);
    let mut generator = RequestGenerator::new(4 * cohort as u32, 7);
    let reqs = generator.uniform(RequestType::AccountSummary, cohort, &mut sessions);

    let rec = TraceRecorder::new();
    let result = run_cohort_traced(workload, store, &mut sessions, &reqs, &gpu, &opts, &rec)
        .expect("traced cohort");
    assert_eq!(
        result.responses, baseline.responses,
        "tracing changed the responses"
    );

    let json = rec.chrome_json();
    rhythm_obs::validate_chrome_trace(&json).expect("exported trace must be valid");
    std::fs::write(path, &json).expect("write trace file");
    println!("\n{}", rec.summary());
    println!(
        "trace written to {path} ({} bytes); open it in Perfetto",
        json.len()
    );
}

fn main() {
    let mut trace_path: Option<String> = None;
    let mut cohort = DEFAULT_COHORT;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace_path = Some(args.next().expect("--trace needs a path")),
            "--cohort" => {
                cohort = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cohort needs a positive integer")
            }
            other => panic!("unknown flag {other:?} (expected --trace <path> or --cohort <n>)"),
        }
    }

    let workload = Workload::build();
    let store = BankStore::generate(4 * cohort as u32, 1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("[workers] host has {cores} core(s); cohort = {cohort}, {REPS} reps per point");

    let baseline = run_at(1, &workload, &store, cohort);
    let mut rows = vec![vec![
        "1".to_string(),
        format!("{:.1}", baseline.elapsed_s * 1e3),
        "1.00x".to_string(),
        "baseline".to_string(),
    ]];

    for workers in [2u32, 4, 8] {
        let run = run_at(workers, &workload, &store, cohort);
        let identical = run.responses == baseline.responses
            && run.sessions == baseline.sessions
            && run.stats_fingerprint == baseline.stats_fingerprint;
        assert!(identical, "workers={workers} diverged from serial run");
        rows.push(vec![
            format!("{workers}"),
            format!("{:.1}", run.elapsed_s * 1e3),
            format!("{:.2}x", baseline.elapsed_s / run.elapsed_s),
            "bit-identical".to_string(),
        ]);
    }

    println!("\nworker-pool scaling, banking cohort of {cohort} ({cores}-core host)\n");
    println!(
        "{}",
        render_table(
            &["workers", "host ms/cohort", "speedup", "vs serial"],
            &rows
        )
    );
    println!("\nModelled device latency is identical at every worker count;");
    println!("only host wall-clock changes. Speedup saturates at physical cores.");

    if let Some(path) = trace_path {
        let workers = cores.min(4) as u32;
        export_trace(&path, workers, &workload, &store, cohort, &baseline);
    }
}
