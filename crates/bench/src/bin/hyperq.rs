//! **§6.4 "HyperQ"** — single hardware work queue (GTX 690) vs 32 queues
//! (GTX Titan).
//!
//! Rhythm keeps many cohorts in flight, each a stream of dependent
//! kernels. With one hardware queue, kernels from different streams
//! enqueued back-to-back create false dependencies and serialize; HyperQ
//! removes them. We replay a realistic interleaved launch sequence
//! through the stream scheduler and also run the full pipeline with 1 vs
//! 32 device slots.

use rhythm_bench::fmt::{render_table, time_s};
use rhythm_bench::latency::{mixed_arrivals, MeasuredService};
use rhythm_bench::measure::{titan_result, Harness};
use rhythm_core::pipeline::{Pipeline, PipelineConfig};
use rhythm_platform::presets::TitanPlatform;
use rhythm_simt::streams::{schedule, StreamOp};

fn main() {
    // Part 1: the stream scheduler on an interleaved cohort launch trace.
    // 8 cohorts in flight, each parse -> process -> response, enqueued
    // round-robin as the event loop would.
    let stages: [(&str, f64); 3] = [("parse", 60e-6), ("process", 500e-6), ("response", 150e-6)];
    let mut ops = Vec::new();
    for &(label, dur) in &stages {
        for cohort in 0..8u32 {
            ops.push(StreamOp {
                stream: cohort,
                duration_s: dur,
                label,
            });
        }
    }
    let single = schedule(&ops, 1, 16);
    let hyperq = schedule(&ops, 32, 16);

    println!("§6.4: HyperQ ablation\n");
    println!("-- stream scheduler (8 cohorts x 3 kernels, interleaved enqueue) --");
    println!(
        "{}",
        render_table(
            &["hw queues", "makespan", "false-dependency stalls"],
            &[
                vec![
                    "1 (GTX 690)".into(),
                    time_s(single.makespan_s),
                    format!("{}", single.false_dependency_stalls)
                ],
                vec![
                    "32 (Titan)".into(),
                    time_s(hyperq.makespan_s),
                    format!("{}", hyperq.false_dependency_stalls)
                ],
            ]
        )
    );
    println!(
        "speedup from HyperQ: {:.2}x\n",
        single.makespan_s / hyperq.makespan_s
    );

    // Part 2: whole-pipeline effect with measured Titan B latencies.
    let h = Harness::new();
    eprintln!("[hyperq] measuring Titan B ...");
    let tr = titan_result(&h, TitanPlatform::B);
    let mut rows = Vec::new();
    for slots in [1u32, 32] {
        let service = MeasuredService::from_titan(&tr);
        let config = PipelineConfig {
            cohort_size: 4096,
            read_batch: 4096,
            formation_timeout_s: 20e-3,
            reader_timeout_s: 10e-3,
            // Mixed traffic over 14 types needs more contexts than the
            // paper's single-type-in-isolation runs (8): rare types hold
            // a context until their formation timeout.
            pool_contexts: 16,
            device_slots: slots,
            parser_instances: 1,
        };
        let pipeline = Pipeline::new(service, config);
        let arrivals = mixed_arrivals(400_000, tr.tput * 0.8, 3);
        let r = pipeline.run(&arrivals);
        rows.push(vec![
            format!("{slots}"),
            format!("{:.0}K", r.throughput() / 1e3),
            time_s(r.latency.mean),
            format!("{}", r.device_queue_peak),
        ]);
    }
    println!("-- pipeline with measured Titan B kernels --");
    println!(
        "{}",
        render_table(
            &[
                "device slots",
                "tput",
                "mean latency",
                "peak queued kernels"
            ],
            &rows
        )
    );
    println!("paper: a single work queue created false dependencies among process kernels,");
    println!("       limiting throughput on the GTX 690; the Titan's HyperQ (32 queues) fixed it");
}
