//! **Extension** — quick pay: variable kernel launches and straggler
//! divergence.
//!
//! The paper skips quick pay ("a variable number of kernel launches based
//! on backend data, making it difficult to implement", §5.1). This
//! harness runs our implementation and measures the cost the paper
//! anticipated: lanes with fewer payees idle through the cohort's tail
//! rounds, so SIMD efficiency decays as rounds progress.

use rhythm_banking::backend::BankStore;
use rhythm_banking::prelude::*;
use rhythm_banking::quickpay::{run_quickpay_cohort, QuickPay};
use rhythm_bench::fmt::render_table;
use rhythm_bench::measure::SALT;
use rhythm_simt::gpu::{Gpu, GpuConfig};

fn main() {
    let mut workload = Workload::build();
    let qp = QuickPay::build(&mut workload.pool);
    let store = BankStore::generate(256, 77);
    let gpu = Gpu::new(GpuConfig::gtx_titan());

    let cohort = 256usize;
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let tokens: Vec<u32> = (0..cohort as u32)
        .map(|i| sessions.insert(i % 256).expect("session"))
        .collect();

    eprintln!("[quickpay] running cohort of {cohort} ...");
    let (responses, rounds) =
        run_quickpay_cohort(&workload, &qp, &store, &mut sessions, &tokens, &gpu, true)
            .expect("quick-pay cohort");

    // Payee-count distribution drives the round count.
    let mut dist = [0u32; 8];
    for u in 0..cohort as u32 {
        let p = store.user(u % 256).unwrap().payees.len();
        dist[p.min(7)] += 1;
    }
    let rows: Vec<Vec<String>> = (2..=5)
        .map(|p| {
            vec![
                format!("{p}"),
                format!("{}", dist[p]),
                format!("{:.0}%", dist[p] as f64 / cohort as f64 * 100.0),
            ]
        })
        .collect();

    println!("\nextension: quick pay (variable kernel launches)\n");
    println!("{}", render_table(&["payees", "lanes", "share"], &rows));
    println!("loop-stage launches for this cohort: {rounds} (= max payees + 1 parse round)");
    let avg_payees: f64 = (2..=5).map(|p| p as f64 * dist[p] as f64).sum::<f64>() / cohort as f64;
    println!(
        "average payments per lane: {avg_payees:.2} -> straggler waste = {:.0}% of loop rounds",
        (1.0 - avg_payees / (rounds as f64 - 1.0)) * 100.0
    );
    let bytes: f64 = responses.iter().map(|r| r.len() as f64).sum::<f64>() / cohort as f64;
    println!("mean response: {bytes:.0} bytes; all lanes correct (differential-tested)");
    println!("\npaper §3.1: \"a timeout mechanism could ensure that stragglers do not delay");
    println!("other requests in a cohort\" — here stragglers cost idle lanes, not wall time.");
}
