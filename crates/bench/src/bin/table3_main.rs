//! **Table 3** — SPECWeb Banking experimental results: power, latency,
//! throughput and requests/Joule for every platform.
//!
//! CPU rows use the calibrated presets (power from the paper's
//! measurements, throughput from our measured instruction counts). Titan
//! rows come from the SIMT engine: per-type cohort measurements combined
//! with the Table 2 mix (weighted harmonic mean, paper §5.3.1), latency
//! from the `rhythm-core` pipeline at 80 % load.

use rhythm_bench::fmt::{kreqs, render_table, time_s};
use rhythm_bench::latency::titan_latency_s;
use rhythm_bench::measure::{
    cpu_platform_results, scalar_measurements, titan_platform_result, titan_result, Harness,
};
use rhythm_platform::presets::{CpuPreset, TitanPlatform, TitanPreset};
use rhythm_platform::PlatformResult;

fn main() {
    let h = Harness::new();

    eprintln!("[table3] measuring scalar instruction counts ...");
    let ms = scalar_measurements(&h, 10);
    let mut results: Vec<(PlatformResult, f64, f64)> = cpu_platform_results(&ms)
        .into_iter()
        .zip(CpuPreset::all())
        .map(|(r, p)| {
            let paper_t = p.paper_tput;
            let paper_l = p.paper_latency_s;
            (r, paper_t, paper_l)
        })
        .collect();

    for variant in [TitanPlatform::A, TitanPlatform::B, TitanPlatform::C] {
        eprintln!("[table3] measuring Titan {variant:?} ...");
        let tr = titan_result(&h, variant);
        let lat = titan_latency_s(&tr);
        let preset = TitanPreset::of(variant);
        results.push((
            titan_platform_result(&tr, lat),
            preset.paper_tput,
            preset.paper_latency_s,
        ));
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(r, paper_t, paper_l)| {
            vec![
                r.name.clone(),
                format!("{:.0}", r.idle_w),
                format!("{:.0}", r.wall_w),
                format!("{:.0}", r.dynamic_w()),
                time_s(r.latency_s),
                time_s(*paper_l),
                kreqs(r.throughput),
                kreqs(*paper_t),
                format!("{:.0}", r.reqs_per_joule_wall()),
                format!("{:.0}", r.reqs_per_joule_dynamic()),
            ]
        })
        .collect();

    println!("\nTable 3: SPECWeb Banking experimental results");
    println!("(power columns are the paper's wall measurements, used as model parameters)\n");
    println!(
        "{}",
        render_table(
            &[
                "platform",
                "idle W",
                "wall W",
                "dyn W",
                "latency",
                "lat (paper)",
                "KReq/s",
                "KReq/s (paper)",
                "req/J wall",
                "req/J dyn"
            ],
            &rows
        )
    );

    // Headline shape checks (paper abstract / §6.1).
    let find = |name: &str| {
        results
            .iter()
            .find(|(r, _, _)| r.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let i7 = &find("Core i7 8 workers").0;
    let a9 = &find("ARM A9 2 workers").0;
    let tb = &find("Titan B").0;
    let tc = &find("Titan C").0;
    println!("shape checks vs paper claims:");
    println!(
        "  Titan B / i7 throughput: {:.1}x   (paper: >4x)",
        tb.throughput / i7.throughput
    );
    println!(
        "  Titan C / i7 throughput: {:.1}x   (paper: >8x)",
        tc.throughput / i7.throughput
    );
    println!(
        "  Titan B dyn eff / A9: {:.2}x      (paper: 0.91x)",
        tb.reqs_per_joule_dynamic() / a9.reqs_per_joule_dynamic()
    );
    println!(
        "  Titan C dyn eff / A9: {:.2}x      (paper: 2.5x)",
        tc.reqs_per_joule_dynamic() / a9.reqs_per_joule_dynamic()
    );
    println!(
        "  Titan C wall eff / A9: {:.2}x     (paper: 3.3x)",
        tc.reqs_per_joule_wall() / a9.reqs_per_joule_wall()
    );
}
