//! **§6.2** — Scaling many-core processors to match Rhythm.
//!
//! How many idealized ARM/i5 cores match Titan B and C throughput, and
//! how much power headroom remains for the uncore?

use rhythm_bench::fmt::render_table;
use rhythm_bench::measure::{cpu_platform_results, scalar_measurements, titan_result, Harness};
use rhythm_platform::presets::{TitanPlatform, TitanPreset};
use rhythm_platform::scaling::{scale_to_match, CoreType};

fn main() {
    let h = Harness::new();
    eprintln!("[scaling] measuring ...");
    let ms = scalar_measurements(&h, 10);
    let cpus = cpu_platform_results(&ms);
    let single_arm = cpus
        .iter()
        .find(|r| r.name == "ARM A9 1 worker")
        .expect("a9 1w")
        .throughput;
    let single_i5 = cpus
        .iter()
        .find(|r| r.name == "Core i5 1 worker")
        .expect("i5 1w")
        .throughput;

    let arm = CoreType::arm_a9(single_arm);
    let i5 = CoreType::core_i5(single_i5);

    let mut rows = Vec::new();
    for variant in [TitanPlatform::B, TitanPlatform::C] {
        eprintln!("[scaling] measuring Titan {variant:?} ...");
        let tr = titan_result(&h, variant);
        let budget = TitanPreset::of(variant).dynamic_w();
        for core in [&arm, &i5] {
            let r = scale_to_match(core, tr.tput, budget);
            rows.push(vec![
                format!("Titan {variant:?}"),
                core.name.clone(),
                format!("{:.0}K", tr.tput / 1e3),
                format!("{}", r.cores_needed),
                format!("{:.0}", r.scaled_power_w),
                format!("{:.0}", r.budget_w),
                format!("{:+.0}", r.uncore_headroom_w),
                format!("{:.0}%", r.uncore_fraction * 100.0),
            ]);
        }
    }

    println!("\n§6.2: many-core scaling to match Rhythm throughput");
    println!("(idealized linear scaling; 1 W/ARM core, 10 W/i5 core — paper's assumptions)\n");
    println!(
        "{}",
        render_table(
            &[
                "target",
                "core type",
                "target tput",
                "cores",
                "scaled W",
                "budget W",
                "uncore headroom W",
                "headroom %"
            ],
            &rows
        )
    );
    println!("paper (Titan B): 192 ARM cores (40 W / 21% headroom), 21 i5 cores (22 W / 10%)");
    println!("paper (Titan C): 385 ARM / 41 i5 cores; scaled systems exceed Titan C's power");
}
