//! Closed-loop load generator for the networked cohort front end.
//!
//! Boots a `rhythm-net` server on an ephemeral port with the Banking
//! workload (SIMT device path by default), drives it with keep-alive
//! client threads — each logs in, then issues GET requests back-to-back,
//! one outstanding request per client — and records throughput, latency
//! percentiles, and the mean cohort fill into `BENCH_net.json`. A second
//! overload run caps admitted connections below the client count and
//! verifies the server sheds with `503` + `Retry-After` instead of
//! panicking or queueing unboundedly.
//!
//! Flags:
//!
//! * `--smoke` — small CI run (a few hundred requests) asserting zero
//!   sheds and zero errors at low load; skips the overload phase.
//! * `--scalar` — serve with the native CPU handlers instead of the SIMT
//!   device path.
//! * `--clients <n>` / `--requests <n>` — closed-loop client count and
//!   per-client request count.
//! * `--out <path>` — result file (default `BENCH_net.json`).

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rhythm_banking::prelude::*;
use rhythm_core::LatencyStats;
use rhythm_net::{read_response, send_request, CohortHandler, NetConfig, NetServer, NetStats};
use rhythm_simt::gpu::{Gpu, GpuConfig};

const NUM_USERS: u32 = 1024;
const SESSION_CAPACITY: u32 = 65536;
const SESSION_SALT: u32 = 0x5EED_0001;

struct Args {
    smoke: bool,
    scalar: bool,
    clients: usize,
    requests: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        scalar: false,
        clients: 16,
        requests: 64,
        out: "BENCH_net.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                parsed.smoke = true;
                parsed.clients = 4;
                parsed.requests = 48;
            }
            "--scalar" => parsed.scalar = true,
            "--clients" => {
                parsed.clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a positive integer")
            }
            "--requests" => {
                parsed.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a positive integer")
            }
            "--out" => parsed.out = args.next().expect("--out needs a path"),
            other => panic!(
                "unknown flag {other:?} (expected --smoke, --scalar, --clients <n>, \
                 --requests <n>, --out <path>)"
            ),
        }
    }
    parsed
}

fn simt_handler() -> SimtHandler {
    let opts = CohortOptions {
        session_capacity: SESSION_CAPACITY,
        session_salt: SESSION_SALT,
        ..CohortOptions::default()
    };
    SimtHandler::new(
        Workload::build(),
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(SESSION_CAPACITY, SESSION_SALT),
        Gpu::new(GpuConfig::gtx_titan()),
        opts,
    )
}

fn scalar_handler() -> ScalarHandler {
    ScalarHandler::new(
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(SESSION_CAPACITY, SESSION_SALT),
    )
}

/// What one closed-loop client saw.
#[derive(Default)]
struct ClientOutcome {
    latencies_s: Vec<f64>,
    ok: u64,
    shed: u64,
    errors: u64,
}

/// One closed-loop client: connect, log in, then `requests` keep-alive
/// GETs with exactly one request outstanding at a time.
fn run_client(addr: SocketAddr, userid: u32, requests: usize) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let Ok(mut conn) = TcpStream::connect(addr) else {
        outcome.errors += 1;
        return outcome;
    };
    let _ = conn.set_read_timeout(Some(Duration::from_secs(30)));
    let mut carry = Vec::new();

    let login = format!(
        "POST /bank/login.php HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\nuserid={userid}",
        format!("userid={userid}").len()
    );
    let t0 = Instant::now();
    if send_request(&mut conn, login.as_bytes()).is_err() {
        outcome.errors += 1;
        return outcome;
    }
    let token = match read_response(&mut conn, &mut carry) {
        Ok(resp) if resp.status == 200 => {
            outcome.ok += 1;
            outcome.latencies_s.push(t0.elapsed().as_secs_f64());
            resp.header("Set-Cookie")
                .and_then(|v| v.strip_prefix("SID=").map(|t| t.trim().to_string()))
                .and_then(|t| t.parse::<u32>().ok())
        }
        Ok(resp) if resp.status == 503 => {
            outcome.shed += 1;
            return outcome;
        }
        _ => {
            outcome.errors += 1;
            return outcome;
        }
    };
    let Some(token) = token else {
        outcome.errors += 1;
        return outcome;
    };

    let get = format!(
        "GET /bank/account_summary.php?userid={userid} HTTP/1.1\r\nHost: loadgen\r\nCookie: SID={token}\r\n\r\n"
    );
    for _ in 0..requests {
        let t0 = Instant::now();
        if send_request(&mut conn, get.as_bytes()).is_err() {
            outcome.errors += 1;
            return outcome;
        }
        match read_response(&mut conn, &mut carry) {
            Ok(resp) if resp.status == 200 => {
                outcome.ok += 1;
                outcome.latencies_s.push(t0.elapsed().as_secs_f64());
            }
            Ok(resp) if resp.status == 503 => outcome.shed += 1,
            _ => {
                outcome.errors += 1;
                return outcome;
            }
        }
    }
    outcome
}

struct LoadResult {
    stats: NetStats,
    latency: LatencyStats,
    throughput_rps: f64,
    wall_s: f64,
    ok: u64,
    shed: u64,
    errors: u64,
    panicked_clients: u64,
}

/// Boot a server, run `clients` closed-loop clients to completion, stop
/// the server, and aggregate.
fn run_load<H: CohortHandler + Send + 'static>(
    handler: H,
    config: NetConfig,
    clients: usize,
    requests: usize,
) -> (LoadResult, H) {
    let server = NetServer::bind("127.0.0.1:0", config, handler).expect("bind");
    let addr = server.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let server_thread = std::thread::spawn(move || server.run(&flag));

    let start = Instant::now();
    let client_threads: Vec<_> = (0..clients)
        .map(|i| std::thread::spawn(move || run_client(addr, (i as u32) % NUM_USERS, requests)))
        .collect();

    let mut latencies = Vec::new();
    let (mut ok, mut shed, mut errors, mut panicked) = (0u64, 0u64, 0u64, 0u64);
    for t in client_threads {
        match t.join() {
            Ok(mut outcome) => {
                latencies.append(&mut outcome.latencies_s);
                ok += outcome.ok;
                shed += outcome.shed;
                errors += outcome.errors;
            }
            Err(_) => panicked += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    let (stats, handler) = server_thread.join().expect("server must not panic");

    let result = LoadResult {
        stats,
        latency: LatencyStats::from_samples(latencies),
        throughput_rps: ok as f64 / wall_s,
        wall_s,
        ok,
        shed,
        errors,
        panicked_clients: panicked,
    };
    (result, handler)
}

/// Overload phase: more clients than admitted connections; the excess
/// must be shed with `503`, with zero panics on either side.
fn run_overload(scalar: bool) -> LoadResult {
    let config = NetConfig {
        max_connections: 2,
        cohort_size: 4,
        fill_timeout: Duration::from_millis(1),
        ..NetConfig::default()
    };
    let clients = 8;
    let requests = 8;
    if scalar {
        run_load(scalar_handler(), config, clients, requests).0
    } else {
        run_load(simt_handler(), config, clients, requests).0
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = parse_args();
    let path = if args.scalar { "scalar" } else { "simt" };
    let config = NetConfig {
        cohort_size: args.clients.clamp(2, 32),
        fill_timeout: Duration::from_millis(2),
        ..NetConfig::default()
    };
    eprintln!(
        "[net_loadgen] {path} path: {} clients x {} requests, cohort_size {}",
        args.clients, args.requests, config.cohort_size
    );

    let (load, fill, device_cohorts) = if args.scalar {
        let (load, _h) = run_load(
            scalar_handler(),
            config.clone(),
            args.clients,
            args.requests,
        );
        (load, 0.0, 0u64)
    } else {
        let (load, h) = run_load(simt_handler(), config.clone(), args.clients, args.requests);
        let fill = h.mean_cohort_device_s();
        (load, fill, h.cohorts)
    };

    let expected = (args.clients * (args.requests + 1)) as u64;
    println!(
        "served {}/{} requests in {:.2}s  ->  {:.0} req/s",
        load.ok, expected, load.wall_s, load.throughput_rps
    );
    println!(
        "latency ms: mean {:.2}  p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
        load.latency.mean * 1e3,
        load.latency.p50 * 1e3,
        load.latency.p95 * 1e3,
        load.latency.p99 * 1e3,
        load.latency.max * 1e3
    );
    println!(
        "cohorts: {} launched ({} full, {} by timeout), {:.2} requests/launch, mean fill {:.2}",
        load.stats.cohorts,
        load.stats.full_launches,
        load.stats.timeout_launches,
        load.stats.mean_requests_per_launch(),
        load.stats.mean_fill()
    );

    assert_eq!(load.panicked_clients, 0, "client threads must not panic");
    assert_eq!(load.errors, 0, "no protocol errors at steady load");
    assert_eq!(load.ok, expected, "every request must be answered 200");
    if !args.scalar {
        assert!(
            load.stats.mean_requests_per_launch() > 1.0,
            "SIMT path must batch: mean requests/launch {:.3} <= 1",
            load.stats.mean_requests_per_launch()
        );
    }
    if args.smoke {
        assert_eq!(load.shed, 0, "no shedding at smoke load");
        assert_eq!(load.stats.shed_503, 0, "no 503s at smoke load");
        assert_eq!(
            load.stats.fsm_rejections, 0,
            "no FSM refusals at smoke load"
        );
    }

    // Overload: shed, don't break.
    let overload = if args.smoke {
        None
    } else {
        let o = run_overload(args.scalar);
        println!(
            "overload: {} admitted (cap 2), {} connections shed 503, zero panics",
            o.stats.accepted, o.stats.rejected_over_cap
        );
        assert_eq!(o.panicked_clients, 0, "overload must not panic clients");
        assert!(
            o.stats.rejected_over_cap > 0 || o.shed > 0,
            "overload run must shed at least one connection"
        );
        Some(o)
    };

    let overload_json = match &overload {
        None => "null".to_string(),
        Some(o) => format!(
            "{{\"accepted\": {}, \"rejected_over_cap\": {}, \"client_503s\": {}, \"panics\": 0}}",
            o.stats.accepted, o.stats.rejected_over_cap, o.shed
        ),
    };
    let json = format!(
        "{{\n  \"path\": \"{path}\",\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \
         \"cohort_size\": {},\n  \"completed\": {},\n  \"wall_s\": {},\n  \
         \"throughput_rps\": {},\n  \"latency_ms\": {{\"mean\": {}, \"p50\": {}, \"p95\": {}, \
         \"p99\": {}, \"max\": {}}},\n  \"cohorts\": {},\n  \"full_launches\": {},\n  \
         \"timeout_launches\": {},\n  \"mean_requests_per_launch\": {},\n  \
         \"mean_cohort_fill\": {},\n  \"device_cohorts\": {device_cohorts},\n  \
         \"mean_cohort_device_s\": {},\n  \"shed_503\": {},\n  \"overload\": {overload_json}\n}}\n",
        args.clients,
        args.requests,
        config.cohort_size,
        load.ok,
        json_f(load.wall_s),
        json_f(load.throughput_rps),
        json_f(load.latency.mean * 1e3),
        json_f(load.latency.p50 * 1e3),
        json_f(load.latency.p95 * 1e3),
        json_f(load.latency.p99 * 1e3),
        json_f(load.latency.max * 1e3),
        load.stats.cohorts,
        load.stats.full_launches,
        load.stats.timeout_launches,
        json_f(load.stats.mean_requests_per_launch()),
        json_f(load.stats.mean_fill()),
        json_f(fill),
        load.stats.shed_503,
    );
    std::fs::write(&args.out, &json).expect("write result file");
    println!("results written to {}", args.out);
}
