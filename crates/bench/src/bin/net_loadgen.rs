//! Load generator for the networked cohort front end, closed- and
//! open-loop.
//!
//! Boots a sharded `rhythm-net` server on an ephemeral port with the
//! Banking workload (SIMT device path by default) and drives it in one of
//! two modes:
//!
//! * **Closed loop** (default): keep-alive client threads, each with
//!   exactly one outstanding request — the latency-bound baseline.
//! * **Open loop** (`--open-loop`): worker threads multiplex many
//!   pipelined non-blocking connections and inject requests on a Poisson
//!   (or `--paced` deterministic) arrival schedule at an aggregate
//!   `--rate`, independent of completions — this exposes the server's
//!   real throughput ceiling instead of the client count.
//!
//! Results are phase-separated: login warmup, the steady-state
//! measurement window, the post-window drain, and the overload probe are
//! reported (and asserted) independently, so steady-state throughput and
//! latency are never contaminated by warmup or overload traffic. The
//! emitted `BENCH_net.json` is schema version 5: each phase object
//! carries a `"phase"` field plus a `"degenerate"` flag (true when the
//! phase has no wall time or no completions, so its rate/latency
//! summaries are placeholders), the run records `mode` and `shards`,
//! `--scrape` adds a `"scrape"` object cross-checking the server's
//! `/metrics` request counters against the loadgen's own totals, and the
//! additive v5 fields record the declared SLO (`slo_ms`), the cohort
//! `controller` configuration (adaptive batching + similarity sub-keys),
//! and — under `--ramp` — the per-step latency/throughput `frontier`
//! with adaptation off vs on.
//!
//! Flags:
//!
//! * `--smoke` — small CI run asserting zero sheds, zero errors, and zero
//!   dropped responses at low load; skips the overload phase.
//! * `--scalar` — serve with the native CPU handlers instead of the SIMT
//!   device path.
//! * `--shards <n>` — reactor shard count (default 1).
//! * `--open-loop` — open-loop injection instead of closed-loop clients.
//! * `--conns <n>` — open-loop connection count (default 64).
//! * `--rate <rps>` — open-loop aggregate arrival rate (default 8000).
//! * `--duration <s>` — open-loop steady window seconds (default 3).
//! * `--paced` — deterministic arrival gaps instead of Poisson.
//! * `--clients <n>` / `--requests <n>` — closed-loop client count and
//!   per-client request count.
//! * `--adaptive` — enable the SLO-aware adaptive cohort controller
//!   (per-shard dynamic target depth and fill deadline).
//! * `--slo-ms <ms>` — declared p99 latency SLO (default 20).
//! * `--subkeys` — similarity sub-keyed cohort formation (split each
//!   request type by divergence-clustered parser features).
//! * `--ramp` — open-loop rate-ramp: sweep offered load at several
//!   fractions of `--rate` with adaptation off and on, recording the
//!   latency/throughput frontier before the main measured run.
//! * `--gate <path>` — regression gate: after the run, compare steady
//!   throughput and mean cohort fill against the checked-in result at
//!   `<path>` and fail if either regressed beyond the noise threshold.
//! * `--scrape` — scrape the live `/metrics` endpoint twice after the
//!   traffic drains: asserts counter monotonicity and records the drift
//!   between server-side and loadgen-side request totals.
//! * `--no-telemetry` — run the server with the telemetry plane disabled
//!   (the bare baseline for overhead comparisons).
//! * `--out <path>` — result file (default `BENCH_net.json`).

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rhythm_banking::prelude::*;
use rhythm_core::LatencyStats;
use rhythm_net::{
    read_response, scan_response, send_request, CohortHandler, NetConfig, NetStats, ShardedServer,
};
use rhythm_simt::gpu::{Gpu, GpuConfig};

const NUM_USERS: u32 = 1024;
const SESSION_CAPACITY: u32 = 65536;
const SESSION_SALT: u32 = 0x5EED_0001;

struct Args {
    smoke: bool,
    scalar: bool,
    open_loop: bool,
    paced: bool,
    scrape: bool,
    no_telemetry: bool,
    adaptive: bool,
    subkeys: bool,
    ramp: bool,
    slo_ms: f64,
    gate: Option<String>,
    shards: usize,
    conns: usize,
    rate: f64,
    duration_s: f64,
    clients: usize,
    requests: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        scalar: false,
        open_loop: false,
        paced: false,
        scrape: false,
        no_telemetry: false,
        adaptive: false,
        subkeys: false,
        ramp: false,
        slo_ms: 20.0,
        gate: None,
        shards: 1,
        conns: 64,
        rate: 8000.0,
        duration_s: 3.0,
        clients: 16,
        requests: 64,
        out: "BENCH_net.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                parsed.smoke = true;
                parsed.clients = 4;
                parsed.requests = 48;
                parsed.conns = 8;
                parsed.rate = 400.0;
                parsed.duration_s = 1.0;
            }
            "--scalar" => parsed.scalar = true,
            "--open-loop" => parsed.open_loop = true,
            "--paced" => parsed.paced = true,
            "--scrape" => parsed.scrape = true,
            "--no-telemetry" => parsed.no_telemetry = true,
            "--adaptive" => parsed.adaptive = true,
            "--subkeys" => parsed.subkeys = true,
            "--ramp" => {
                parsed.ramp = true;
                parsed.open_loop = true;
            }
            "--slo-ms" => {
                parsed.slo_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &f64| s > 0.0)
                    .expect("--slo-ms needs a positive number")
            }
            "--gate" => parsed.gate = Some(args.next().expect("--gate needs a path")),
            "--shards" => {
                parsed.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--shards needs a positive integer")
            }
            "--conns" => {
                parsed.conns = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--conns needs a positive integer")
            }
            "--rate" => {
                parsed.rate = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &f64| r > 0.0)
                    .expect("--rate needs a positive number")
            }
            "--duration" => {
                parsed.duration_s = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&d: &f64| d > 0.0)
                    .expect("--duration needs a positive number")
            }
            "--clients" => {
                parsed.clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a positive integer")
            }
            "--requests" => {
                parsed.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a positive integer")
            }
            "--out" => parsed.out = args.next().expect("--out needs a path"),
            other => panic!(
                "unknown flag {other:?} (expected --smoke, --scalar, --open-loop, --paced, \
                 --scrape, --no-telemetry, --adaptive, --subkeys, --ramp, --slo-ms <ms>, \
                 --gate <path>, --shards <n>, --conns <n>, --rate <rps>, \
                 --duration <s>, --clients <n>, --requests <n>, --out <path>)"
            ),
        }
    }
    assert!(
        !(parsed.scrape && parsed.no_telemetry),
        "--scrape needs the telemetry plane; drop --no-telemetry"
    );
    assert!(
        !(parsed.adaptive && parsed.no_telemetry),
        "the adaptive controller observes the telemetry plane; drop --no-telemetry"
    );
    parsed
}

fn simt_handler(subkeys: bool) -> SimtHandler {
    let opts = CohortOptions {
        session_capacity: SESSION_CAPACITY,
        session_salt: SESSION_SALT,
        ..CohortOptions::default()
    };
    let h = SimtHandler::new(
        Workload::build(),
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(SESSION_CAPACITY, SESSION_SALT),
        Gpu::new(GpuConfig::gtx_titan()),
        opts,
    );
    if subkeys {
        h.with_subkeys()
    } else {
        h
    }
}

fn scalar_handler(subkeys: bool) -> ScalarHandler {
    let h = ScalarHandler::new(
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(SESSION_CAPACITY, SESSION_SALT),
    );
    if subkeys {
        h.with_subkeys()
    } else {
        h
    }
}

/// A booted server: bound address, stop flag, and the join handle
/// yielding per-shard `(stats, handler)` pairs.
type BootedServer<H> = (
    SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<Vec<(NetStats, H)>>,
);

/// Boot a sharded server with one handler per shard.
fn boot<H: CohortHandler + Send + 'static>(
    mk: impl Fn() -> H,
    config: NetConfig,
    shards: usize,
) -> BootedServer<H> {
    let handlers: Vec<H> = (0..shards).map(|_| mk()).collect();
    let server = ShardedServer::bind("127.0.0.1:0", config, handlers).expect("bind");
    let addr = server.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag).shards);
    (addr, stop, join)
}

/// One live `/metrics` scrape: GET the exposition off the still-running
/// server and sum the per-shard `rhythm_requests_total` samples.
fn scrape_requests_total(addr: SocketAddr) -> u64 {
    let mut conn = TcpStream::connect(addr).expect("scrape connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("scrape timeout");
    let mut carry = Vec::new();
    send_request(&mut conn, b"GET /metrics HTTP/1.1\r\nHost: loadgen\r\n\r\n")
        .expect("scrape send");
    let resp = read_response(&mut conn, &mut carry).expect("scrape read");
    assert_eq!(resp.status, 200, "/metrics must answer 200");
    let body = String::from_utf8(resp.body().to_vec()).expect("metrics body is UTF-8");
    body.lines()
        .filter(|l| l.starts_with("rhythm_requests_total{"))
        .filter_map(|l| l.split_whitespace().last())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

/// One phase's client-side aggregate.
#[derive(Default)]
struct PhaseOutcome {
    latencies_s: Vec<f64>,
    completed: u64,
    shed: u64,
    errors: u64,
}

/// What one closed-loop client saw, phase-separated: the login is warmup,
/// the GETs are the steady measurement.
#[derive(Default)]
struct ClientOutcome {
    warmup: PhaseOutcome,
    steady: PhaseOutcome,
}

/// One closed-loop client: connect and log in (warmup), wait at the
/// barrier so every client starts the measured window together, then
/// issue `requests` keep-alive GETs with one outstanding at a time.
fn run_client(
    addr: SocketAddr,
    userid: u32,
    requests: usize,
    start_barrier: &Barrier,
) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    // Warmup: login on a blocking connection. Any failure is recorded and
    // the client still reaches the barrier so nobody deadlocks.
    let session = (|| {
        let mut conn = TcpStream::connect(addr).ok()?;
        conn.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
        let mut carry = Vec::new();
        let body = format!("userid={userid}");
        let login = format!(
            "POST /bank/login.php HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        send_request(&mut conn, login.as_bytes()).ok()?;
        match read_response(&mut conn, &mut carry) {
            Ok(resp) if resp.status == 200 => {
                let token: u32 = resp
                    .header("Set-Cookie")
                    .and_then(|v| v.strip_prefix("SID=").map(|t| t.trim().to_string()))
                    .and_then(|t| t.parse().ok())?;
                Some((conn, carry, token))
            }
            Ok(resp) if resp.status == 503 => {
                outcome.warmup.shed += 1;
                None
            }
            _ => None,
        }
    })();
    match &session {
        Some(_) => outcome.warmup.completed += 1,
        None if outcome.warmup.shed == 0 => outcome.warmup.errors += 1,
        None => {}
    }
    start_barrier.wait();
    let Some((mut conn, mut carry, token)) = session else {
        return outcome;
    };

    let get = format!(
        "GET /bank/account_summary.php?userid={userid} HTTP/1.1\r\nHost: loadgen\r\nCookie: SID={token}\r\n\r\n"
    );
    for _ in 0..requests {
        let t0 = Instant::now();
        if send_request(&mut conn, get.as_bytes()).is_err() {
            outcome.steady.errors += 1;
            return outcome;
        }
        match read_response(&mut conn, &mut carry) {
            Ok(resp) if resp.status == 200 => {
                outcome.steady.completed += 1;
                outcome.steady.latencies_s.push(t0.elapsed().as_secs_f64());
            }
            Ok(resp) if resp.status == 503 => outcome.steady.shed += 1,
            _ => {
                outcome.steady.errors += 1;
                return outcome;
            }
        }
    }
    outcome
}

/// One phase's load-side result, as emitted into the JSON `phases` array.
struct PhaseResult {
    phase: &'static str,
    completed: u64,
    shed: u64,
    errors: u64,
    wall_s: f64,
    throughput_rps: f64,
    latency: Option<LatencyStats>,
    /// True when the phase has no wall time or no completions — e.g. the
    /// instant phases of a `--smoke` run — so the rate and latency
    /// summaries are placeholders, not measurements. Consumers should
    /// skip degenerate phases when aggregating.
    degenerate: bool,
}

impl PhaseResult {
    fn from_outcome(phase: &'static str, o: PhaseOutcome, wall_s: f64) -> Self {
        PhaseResult {
            phase,
            completed: o.completed,
            shed: o.shed,
            errors: o.errors,
            wall_s,
            throughput_rps: if wall_s > 0.0 {
                o.completed as f64 / wall_s
            } else {
                0.0
            },
            degenerate: wall_s <= 0.0 || o.completed == 0,
            latency: (!o.latencies_s.is_empty()).then(|| LatencyStats::from_samples(o.latencies_s)),
        }
    }
}

struct LoadResult {
    stats: NetStats,
    per_shard: Vec<NetStats>,
    phases: Vec<PhaseResult>,
    panicked_clients: u64,
    /// `(first, second)` summed `rhythm_requests_total` from two live
    /// `/metrics` scrapes taken after the traffic drained (`--scrape`).
    scrape: Option<(u64, u64)>,
}

impl LoadResult {
    fn phase(&self, name: &str) -> &PhaseResult {
        self.phases
            .iter()
            .find(|p| p.phase == name)
            .expect("phase present")
    }

    /// Client-side count of requests the server answered (200s and 503s
    /// across every phase) — the number `/metrics` must agree with.
    fn answered(&self) -> u64 {
        self.phases.iter().map(|p| p.completed + p.shed).sum()
    }
}

/// Closed loop: run `clients` lock-step clients to completion.
fn run_closed<H: CohortHandler + Send + 'static>(
    mk: impl Fn() -> H,
    config: NetConfig,
    shards: usize,
    clients: usize,
    requests: usize,
    scrape: bool,
) -> (LoadResult, Vec<H>) {
    let (addr, stop, server) = boot(mk, config, shards);
    let warmup_start = Instant::now();
    let barrier = Arc::new(Barrier::new(clients + 1));
    let client_threads: Vec<_> = (0..clients)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || run_client(addr, (i as u32) % NUM_USERS, requests, &barrier))
        })
        .collect();
    barrier.wait();
    let warmup_s = warmup_start.elapsed().as_secs_f64();
    let steady_start = Instant::now();

    let mut warmup = PhaseOutcome::default();
    let mut steady = PhaseOutcome::default();
    let mut panicked = 0u64;
    for t in client_threads {
        match t.join() {
            Ok(o) => {
                warmup.completed += o.warmup.completed;
                warmup.shed += o.warmup.shed;
                warmup.errors += o.warmup.errors;
                steady.completed += o.steady.completed;
                steady.shed += o.steady.shed;
                steady.errors += o.steady.errors;
                let mut lat = o.steady.latencies_s;
                steady.latencies_s.append(&mut lat);
            }
            Err(_) => panicked += 1,
        }
    }
    let steady_s = steady_start.elapsed().as_secs_f64();
    // Scrape while the server is still live: the counters are read off
    // the in-band admin endpoint, not the post-join stats.
    let scraped = scrape.then(|| (scrape_requests_total(addr), scrape_requests_total(addr)));
    stop.store(true, Ordering::Relaxed);
    let shards_out = server.join().expect("server must not panic");
    let (per_shard, handlers): (Vec<NetStats>, Vec<H>) = shards_out.into_iter().unzip();
    let mut stats = NetStats::default();
    for s in &per_shard {
        stats.merge(s);
    }
    (
        LoadResult {
            stats,
            per_shard,
            phases: vec![
                PhaseResult::from_outcome("warmup", warmup, warmup_s),
                PhaseResult::from_outcome("steady", steady, steady_s),
            ],
            panicked_clients: panicked,
            scrape: scraped,
        },
        handlers,
    )
}

/// xorshift64* — deterministic arrival-gap randomness with no deps.
struct XorShift64(u64);

impl XorShift64 {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with the given mean (Poisson inter-arrival gap).
    fn next_exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_f64()).ln()
    }
}

/// First-injection stagger for one open-loop connection. Paced mode
/// spreads the starts uniformly over one mean gap; Poisson mode draws the
/// first exponential arrival. Both *advance* the generator — an earlier
/// version read the raw xorshift state without stepping it, which (a)
/// reused the near-affine seed as if it were output and (b) left every
/// connection's subsequent arrival stream correlated with its offset.
fn start_offset(rng: &mut XorShift64, per_conn_gap: f64, paced: bool) -> f64 {
    if paced {
        per_conn_gap * rng.next_f64()
    } else {
        rng.next_exp(per_conn_gap)
    }
}

/// One open-loop connection's in-flight state.
struct OpenConn {
    stream: TcpStream,
    get: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    rbuf: Vec<u8>,
    /// Scheduled injection time of each outstanding request, in order.
    inflight: VecDeque<Instant>,
    next_send: Instant,
    rng: XorShift64,
    dead: bool,
}

/// Cap on outstanding pipelined requests per connection, bounding client
/// memory when the schedule outruns the server.
const MAX_INFLIGHT: usize = 64;

/// Open loop: `conns` non-blocking pipelined connections across a few
/// worker threads, injecting on the arrival schedule at `rate` aggregate
/// rps for `duration_s`, then draining. Latency is measured from the
/// *scheduled* injection time (coordinated-omission-free); completions
/// after the window land in the `drain` phase.
#[allow(clippy::too_many_arguments)]
fn run_open<H: CohortHandler + Send + 'static>(
    mk: impl Fn() -> H,
    config: NetConfig,
    shards: usize,
    conns: usize,
    rate: f64,
    duration_s: f64,
    paced: bool,
    scrape: bool,
) -> (LoadResult, Vec<H>) {
    let (addr, stop, server) = boot(mk, config, shards);

    // Warmup: log every connection in on a blocking socket.
    let warmup_start = Instant::now();
    let mut warmup = PhaseOutcome::default();
    let mut open_conns: Vec<OpenConn> = Vec::with_capacity(conns);
    for i in 0..conns {
        let userid = (i as u32) % NUM_USERS;
        let setup = (|| {
            let mut conn = TcpStream::connect(addr).ok()?;
            conn.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
            let mut carry = Vec::new();
            let body = format!("userid={userid}");
            let login = format!(
                "POST /bank/login.php HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            send_request(&mut conn, login.as_bytes()).ok()?;
            let resp = read_response(&mut conn, &mut carry).ok()?;
            if resp.status != 200 {
                return None;
            }
            let token: u32 = resp
                .header("Set-Cookie")
                .and_then(|v| v.strip_prefix("SID=").map(|t| t.trim().to_string()))
                .and_then(|t| t.parse().ok())?;
            conn.set_nonblocking(true).ok()?;
            Some((conn, carry, token))
        })();
        match setup {
            Some((stream, carry, token)) => {
                warmup.completed += 1;
                let get = format!(
                    "GET /bank/account_summary.php?userid={userid} HTTP/1.1\r\nHost: loadgen\r\nCookie: SID={token}\r\n\r\n"
                );
                open_conns.push(OpenConn {
                    stream,
                    get: get.into_bytes(),
                    wbuf: Vec::new(),
                    wpos: 0,
                    rbuf: carry,
                    inflight: VecDeque::new(),
                    next_send: Instant::now(),
                    rng: XorShift64(0x9E37_79B9_7F4A_7C15 ^ (i as u64 + 1)),
                    dead: false,
                });
            }
            None => warmup.errors += 1,
        }
    }
    let warmup_s = warmup_start.elapsed().as_secs_f64();
    assert!(
        !open_conns.is_empty(),
        "open-loop warmup must log in at least one connection"
    );

    // Steady window: split the connections across a few workers; each
    // worker services its slice with non-blocking writes/reads.
    let workers = open_conns.len().min(2);
    let per_conn_gap = open_conns.len() as f64 / rate;
    let steady_start = Instant::now();
    let steady_end = steady_start + Duration::from_secs_f64(duration_s);
    for c in &mut open_conns {
        // First injections are staggered over one mean gap so shards see
        // a smooth ramp rather than a synchronized burst.
        let offset = start_offset(&mut c.rng, per_conn_gap, paced);
        c.next_send = steady_start + Duration::from_secs_f64(offset);
    }
    let mut slices: Vec<Vec<OpenConn>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, c) in open_conns.into_iter().enumerate() {
        slices[i % workers].push(c);
    }

    let outcomes: Vec<(PhaseOutcome, PhaseOutcome, u64)> = std::thread::scope(|scope| {
        let joins: Vec<_> = slices
            .into_iter()
            .map(|slice| scope.spawn(move || open_worker(slice, steady_end, per_conn_gap, paced)))
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("open-loop worker must not panic"))
            .collect()
    });
    let mut steady = PhaseOutcome::default();
    let mut drain = PhaseOutcome::default();
    let mut undrained = 0u64;
    for (s, d, u) in outcomes {
        steady.completed += s.completed;
        steady.shed += s.shed;
        steady.errors += s.errors;
        let mut lat = s.latencies_s;
        steady.latencies_s.append(&mut lat);
        drain.completed += d.completed;
        drain.shed += d.shed;
        drain.errors += d.errors;
        undrained += u;
    }
    let drain_s = (Instant::now() - steady_end).as_secs_f64().max(0.0);

    let scraped = scrape.then(|| (scrape_requests_total(addr), scrape_requests_total(addr)));
    stop.store(true, Ordering::Relaxed);
    let shards_out = server.join().expect("server must not panic");
    let (per_shard, handlers): (Vec<NetStats>, Vec<H>) = shards_out.into_iter().unzip();
    let mut stats = NetStats::default();
    for s in &per_shard {
        stats.merge(s);
    }
    drain.errors += undrained;
    (
        LoadResult {
            stats,
            per_shard,
            phases: vec![
                PhaseResult::from_outcome("warmup", warmup, warmup_s),
                PhaseResult::from_outcome("steady", steady, duration_s),
                PhaseResult::from_outcome("drain", drain, drain_s),
            ],
            panicked_clients: 0,
            scrape: scraped,
        },
        handlers,
    )
}

/// Service one worker's slice of open-loop connections through the steady
/// window, then drain. Returns (steady, drain, undrained-request count).
fn open_worker(
    mut conns: Vec<OpenConn>,
    steady_end: Instant,
    per_conn_gap: f64,
    paced: bool,
) -> (PhaseOutcome, PhaseOutcome, u64) {
    let mut steady = PhaseOutcome::default();
    let mut drain = PhaseOutcome::default();
    let mut chunk = [0u8; 16 * 1024];
    let drain_deadline = steady_end + Duration::from_secs(2);

    loop {
        let now = Instant::now();
        let injecting = now < steady_end;
        let mut live = false;
        let mut progress = false;
        for c in conns.iter_mut() {
            if c.dead {
                continue;
            }
            live = true;
            // Inject every request whose scheduled time has arrived (the
            // arrival process never waits for completions — open loop).
            // The inflight cap bounds memory if the server falls behind.
            while injecting && c.next_send <= now && c.inflight.len() < MAX_INFLIGHT {
                c.wbuf.extend_from_slice(&c.get);
                c.inflight.push_back(c.next_send);
                let gap = if paced {
                    per_conn_gap
                } else {
                    c.rng.next_exp(per_conn_gap)
                };
                c.next_send += Duration::from_secs_f64(gap);
            }
            while c.wpos < c.wbuf.len() {
                match c.stream.write(&c.wbuf[c.wpos..]) {
                    Ok(0) => {
                        c.dead = true;
                        break;
                    }
                    Ok(n) => {
                        c.wpos += n;
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
            }
            if c.wpos >= c.wbuf.len() {
                c.wbuf.clear();
                c.wpos = 0;
            }
            loop {
                match c.stream.read(&mut chunk) {
                    Ok(0) => {
                        c.dead = true;
                        break;
                    }
                    Ok(n) => {
                        c.rbuf.extend_from_slice(&chunk[..n]);
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
            }
            while let Some((status, total)) = scan_response(&c.rbuf) {
                c.rbuf.drain(..total);
                let done = Instant::now();
                let sent_at = c.inflight.pop_front();
                let phase = if done < steady_end {
                    &mut steady
                } else {
                    &mut drain
                };
                match status {
                    200 => {
                        phase.completed += 1;
                        if let Some(at) = sent_at {
                            phase.latencies_s.push((done - at).as_secs_f64());
                        }
                    }
                    503 => phase.shed += 1,
                    _ => phase.errors += 1,
                }
            }
            if c.dead && !c.inflight.is_empty() && injecting {
                // Responses lost with the connection count as errors in
                // the window they were scheduled for.
                steady.errors += c.inflight.len() as u64;
                c.inflight.clear();
            }
        }
        let all_drained = conns.iter().all(|c| c.dead || c.inflight.is_empty());
        if !injecting && (all_drained || Instant::now() > drain_deadline || !live) {
            break;
        }
        if !progress {
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    let undrained: u64 = conns
        .iter()
        .map(|c| if c.dead { 0 } else { c.inflight.len() as u64 })
        .sum();
    (steady, drain, undrained)
}

/// Overload phase: more clients than admitted connections; the excess
/// must be shed with `503`, with zero panics on either side.
fn run_overload(scalar: bool, shards: usize) -> LoadResult {
    let config = NetConfig {
        max_connections: 2,
        cohort_size: 4,
        fill_timeout: Duration::from_millis(1),
        ..NetConfig::default()
    };
    // The cap is per reactor, so overflow the whole sharded capacity
    // (shards × 2 slots) to guarantee sheds on every shard.
    let clients = shards * 2 + 8;
    let requests = 8;
    let mut result = if scalar {
        run_closed(
            || scalar_handler(false),
            config,
            shards,
            clients,
            requests,
            false,
        )
        .0
    } else {
        run_closed(
            || simt_handler(false),
            config,
            shards,
            clients,
            requests,
            false,
        )
        .0
    };
    for p in &mut result.phases {
        // Overload traffic is its own phase in the report; the inner
        // closed-loop phases are re-labelled so they can never be mistaken
        // for (or merged into) the steady-state measurement.
        p.phase = match p.phase {
            "warmup" => "overload_warmup",
            _ => "overload",
        };
    }
    result
}

/// One step of the `--ramp` latency/throughput frontier: the steady
/// phase of a short open-loop run at one offered rate, with the adaptive
/// controller off or on.
struct FrontierStep {
    rate: f64,
    adaptive: bool,
    completed: u64,
    shed: u64,
    errors: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_fill: f64,
    full_launches: u64,
    timeout_launches: u64,
}

impl FrontierStep {
    fn json(&self) -> String {
        format!(
            "{{\"rate_rps\": {}, \"adaptive\": {}, \"completed\": {}, \"shed\": {}, \
             \"errors\": {}, \"throughput_rps\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"mean_cohort_fill\": {}, \"full_launches\": {}, \"timeout_launches\": {}}}",
            json_f(self.rate),
            self.adaptive,
            self.completed,
            self.shed,
            self.errors,
            json_f(self.throughput_rps),
            json_f(self.p50_ms),
            json_f(self.p99_ms),
            json_f(self.mean_fill),
            self.full_launches,
            self.timeout_launches
        )
    }
}

/// Offered-load fractions of `--rate` swept by the ramp.
const RAMP_FRACS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Sweep offered load with adaptation off then on, one short open-loop
/// run per (rate, mode) point, and return the frontier in sweep order.
fn run_ramp(args: &Args, base: &NetConfig) -> Vec<FrontierStep> {
    let fracs: &[f64] = if args.smoke {
        &RAMP_FRACS[2..]
    } else {
        &RAMP_FRACS
    };
    let step_s = if args.smoke {
        0.5
    } else {
        args.duration_s.min(1.5)
    };
    let mut frontier = Vec::new();
    for adaptive in [false, true] {
        for &frac in fracs {
            let rate = args.rate * frac;
            let config = NetConfig {
                adaptive,
                // The controller observes the telemetry plane, so the
                // adaptive steps force it on even under --no-telemetry.
                telemetry: base.telemetry || adaptive,
                ..base.clone()
            };
            let load = if args.scalar {
                run_open(
                    || scalar_handler(args.subkeys),
                    config,
                    args.shards,
                    args.conns,
                    rate,
                    step_s,
                    args.paced,
                    false,
                )
                .0
            } else {
                run_open(
                    || simt_handler(args.subkeys),
                    config,
                    args.shards,
                    args.conns,
                    rate,
                    step_s,
                    args.paced,
                    false,
                )
                .0
            };
            let steady = load.phase("steady");
            let (p50_ms, p99_ms) = steady
                .latency
                .as_ref()
                .map_or((0.0, 0.0), |l| (l.p50 * 1e3, l.p99 * 1e3));
            let step = FrontierStep {
                rate,
                adaptive,
                completed: steady.completed,
                shed: steady.shed,
                errors: steady.errors,
                throughput_rps: steady.throughput_rps,
                p50_ms,
                p99_ms,
                mean_fill: load.stats.mean_fill(),
                full_launches: load.stats.full_launches,
                timeout_launches: load.stats.timeout_launches,
            };
            eprintln!(
                "[ramp] rate {:>7.0} adaptive {:<5} -> {:>7.0} rps  p50 {:>6.2} ms  \
                 p99 {:>6.2} ms  fill {:.3}",
                step.rate,
                step.adaptive,
                step.throughput_rps,
                step.p50_ms,
                step.p99_ms,
                step.mean_fill
            );
            frontier.push(step);
        }
    }
    frontier
}

/// Pull a top-level numeric field out of a previously emitted
/// `BENCH_net.json` (two-space-indented keys; phase objects are nested
/// on single lines and can never match).
fn extract_top_level_f64(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\n  \"{key}\": ");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest.find([',', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Fractional noise the regression gate tolerates before failing.
const GATE_NOISE_FRAC: f64 = 0.2;

/// Regression gate: compare this run's steady throughput and mean cohort
/// fill against the checked-in baseline; panic if either regressed more
/// than the noise threshold.
fn run_gate(path: &str, throughput_rps: f64, mean_fill: f64) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--gate: cannot read baseline {path}: {e}"));
    let base_tp = extract_top_level_f64(&text, "throughput_rps")
        .unwrap_or_else(|| panic!("--gate: no top-level throughput_rps in {path}"));
    let base_fill = extract_top_level_f64(&text, "mean_cohort_fill")
        .unwrap_or_else(|| panic!("--gate: no top-level mean_cohort_fill in {path}"));
    let tp_floor = base_tp * (1.0 - GATE_NOISE_FRAC);
    let fill_floor = base_fill * (1.0 - GATE_NOISE_FRAC);
    println!(
        "gate vs {path}: throughput {throughput_rps:.0} rps (floor {tp_floor:.0}, \
         baseline {base_tp:.0}), fill {mean_fill:.3} (floor {fill_floor:.3}, \
         baseline {base_fill:.3})"
    );
    assert!(
        throughput_rps >= tp_floor,
        "regression gate: steady throughput {throughput_rps:.0} rps fell below \
         {tp_floor:.0} ({}% of baseline {base_tp:.0})",
        (1.0 - GATE_NOISE_FRAC) * 100.0
    );
    assert!(
        mean_fill >= fill_floor,
        "regression gate: mean cohort fill {mean_fill:.3} fell below {fill_floor:.3} \
         ({}% of baseline {base_fill:.3})",
        (1.0 - GATE_NOISE_FRAC) * 100.0
    );
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn phase_json(p: &PhaseResult) -> String {
    let latency = match &p.latency {
        None => "null".to_string(),
        Some(l) => format!(
            "{{\"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
            json_f(l.mean * 1e3),
            json_f(l.p50 * 1e3),
            json_f(l.p95 * 1e3),
            json_f(l.p99 * 1e3),
            json_f(l.max * 1e3)
        ),
    };
    format!(
        "{{\"phase\": \"{}\", \"completed\": {}, \"shed\": {}, \"errors\": {}, \
         \"wall_s\": {}, \"throughput_rps\": {}, \"degenerate\": {}, \"latency_ms\": {latency}}}",
        p.phase,
        p.completed,
        p.shed,
        p.errors,
        json_f(p.wall_s),
        json_f(p.throughput_rps),
        p.degenerate
    )
}

fn main() {
    let args = parse_args();
    let path = if args.scalar { "scalar" } else { "simt" };
    let mode = if args.open_loop { "open" } else { "closed" };
    let config = NetConfig {
        cohort_size: if args.open_loop {
            32
        } else {
            args.clients.clamp(2, 32)
        },
        fill_timeout: Duration::from_millis(2),
        telemetry: !args.no_telemetry,
        adaptive: args.adaptive,
        slo_p99: Duration::from_secs_f64(args.slo_ms / 1e3),
        ..NetConfig::default()
    };
    if args.open_loop {
        eprintln!(
            "[net_loadgen] {path} path, open loop: {} conns at {:.0} rps ({}) for {:.1}s, \
             {} shard(s), cohort_size {}",
            args.conns,
            args.rate,
            if args.paced { "paced" } else { "poisson" },
            args.duration_s,
            args.shards,
            config.cohort_size
        );
    } else {
        eprintln!(
            "[net_loadgen] {path} path, closed loop: {} clients x {} requests, {} shard(s), \
             cohort_size {}",
            args.clients, args.requests, args.shards, config.cohort_size
        );
    }

    // The frontier sweep runs first so its servers are gone before the
    // measured run boots.
    let frontier = args.ramp.then(|| run_ramp(&args, &config));

    let run = |scalar: bool| -> (LoadResult, f64, u64) {
        if scalar {
            let (load, _h) = if args.open_loop {
                run_open(
                    || scalar_handler(args.subkeys),
                    config.clone(),
                    args.shards,
                    args.conns,
                    args.rate,
                    args.duration_s,
                    args.paced,
                    args.scrape,
                )
            } else {
                run_closed(
                    || scalar_handler(args.subkeys),
                    config.clone(),
                    args.shards,
                    args.clients,
                    args.requests,
                    args.scrape,
                )
            };
            (load, 0.0, 0u64)
        } else {
            let (load, handlers) = if args.open_loop {
                run_open(
                    || simt_handler(args.subkeys),
                    config.clone(),
                    args.shards,
                    args.conns,
                    args.rate,
                    args.duration_s,
                    args.paced,
                    args.scrape,
                )
            } else {
                run_closed(
                    || simt_handler(args.subkeys),
                    config.clone(),
                    args.shards,
                    args.clients,
                    args.requests,
                    args.scrape,
                )
            };
            let cohorts: u64 = handlers.iter().map(|h| h.cohorts).sum();
            let device_s: f64 = handlers.iter().map(|h| h.device_time_s).sum();
            let mean = if cohorts == 0 {
                0.0
            } else {
                device_s / cohorts as f64
            };
            (load, mean, cohorts)
        }
    };
    let (load, mean_cohort_device_s, device_cohorts) = run(args.scalar);

    let steady = load.phase("steady");
    println!(
        "steady: {} completed in {:.2}s  ->  {:.0} req/s  ({} shed, {} errors)",
        steady.completed, steady.wall_s, steady.throughput_rps, steady.shed, steady.errors
    );
    if let Some(l) = &steady.latency {
        println!(
            "steady latency ms: mean {:.2}  p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
            l.mean * 1e3,
            l.p50 * 1e3,
            l.p95 * 1e3,
            l.p99 * 1e3,
            l.max * 1e3
        );
    }
    let warmup = load.phase("warmup");
    println!(
        "warmup: {} logins ({} errors) — excluded from steady stats",
        warmup.completed, warmup.errors
    );
    println!(
        "server: {} cohorts ({} full, {} by timeout), {:.2} requests/launch, mean fill {:.2}, \
         {} idle polls, {} paused reads, {} dropped responses",
        load.stats.cohorts,
        load.stats.full_launches,
        load.stats.timeout_launches,
        load.stats.mean_requests_per_launch(),
        load.stats.mean_fill(),
        load.stats.idle_polls,
        load.stats.reads_paused,
        load.stats.responses_dropped
    );
    for (i, s) in load.per_shard.iter().enumerate() {
        println!(
            "  shard {i}: {} accepted, {} requests, {} cohorts, fill {:.2}",
            s.accepted,
            s.requests,
            s.cohorts,
            s.mean_fill()
        );
    }

    assert_eq!(load.panicked_clients, 0, "client threads must not panic");
    assert_eq!(
        load.stats.responses_dropped, 0,
        "no responses may be dropped"
    );
    if !args.open_loop {
        let expected = (args.clients * args.requests) as u64;
        assert_eq!(steady.errors, 0, "no protocol errors at steady load");
        assert_eq!(
            steady.completed, expected,
            "every steady request must be answered 200"
        );
        assert_eq!(
            warmup.completed as usize, args.clients,
            "every client must log in"
        );
    }
    if !args.scalar {
        assert!(
            load.stats.mean_requests_per_launch() > 1.0 || args.open_loop,
            "SIMT path must batch: mean requests/launch {:.3} <= 1",
            load.stats.mean_requests_per_launch()
        );
    }
    if args.smoke {
        assert_eq!(steady.shed, 0, "no shedding at smoke load");
        assert_eq!(steady.errors, 0, "no errors at smoke load");
        assert_eq!(load.stats.shed_503, 0, "no 503s at smoke load");
        assert_eq!(
            load.stats.fsm_rejections, 0,
            "no FSM refusals at smoke load"
        );
    }

    // Scrape cross-check: the server's own /metrics counters, read live
    // over the wire, must agree with what the loadgen observed.
    let scrape_json = match load.scrape {
        None => "null".to_string(),
        Some((first, second)) => {
            assert!(
                second >= first,
                "scrape counters must be monotonic: {first} -> {second}"
            );
            assert_eq!(
                second, load.stats.requests,
                "live scrape must match the server's final request counter"
            );
            let answered = load.answered();
            let drift = second as i64 - answered as i64;
            let errors: u64 = load.phases.iter().map(|p| p.errors).sum();
            if errors == 0 {
                assert_eq!(
                    drift, 0,
                    "error-free run: server requests {second} != loadgen answered {answered}"
                );
            }
            println!(
                "scrape: server {second} requests vs loadgen {answered} answered \
                 (drift {drift}), counters monotonic"
            );
            format!(
                "{{\"first_requests\": {first}, \"second_requests\": {second}, \
                 \"monotonic\": true, \"loadgen_answered\": {answered}, \"drift\": {drift}}}"
            )
        }
    };

    // Overload: shed, don't break. Its traffic is a separate phase and
    // never merges into the steady numbers above.
    let overload = if args.smoke {
        None
    } else {
        let o = run_overload(args.scalar, args.shards);
        println!(
            "overload: {} admitted (cap 2/shard), {} connections shed 503, zero panics",
            o.stats.accepted, o.stats.rejected_over_cap
        );
        assert_eq!(o.panicked_clients, 0, "overload must not panic clients");
        assert!(
            o.stats.rejected_over_cap > 0 || o.phases.iter().map(|p| p.shed).sum::<u64>() > 0,
            "overload run must shed at least one connection"
        );
        Some(o)
    };

    let mut phases: Vec<String> = load.phases.iter().map(phase_json).collect();
    if let Some(o) = &overload {
        phases.extend(o.phases.iter().map(phase_json));
    }
    let overload_json = match &overload {
        None => "null".to_string(),
        Some(o) => format!(
            "{{\"accepted\": {}, \"rejected_over_cap\": {}, \"client_503s\": {}, \"panics\": 0}}",
            o.stats.accepted,
            o.stats.rejected_over_cap,
            o.phases.iter().map(|p| p.shed).sum::<u64>()
        ),
    };
    let frontier_json = match &frontier {
        None => "null".to_string(),
        Some(steps) => format!(
            "[\n    {}\n  ]",
            steps
                .iter()
                .map(FrontierStep::json)
                .collect::<Vec<_>>()
                .join(",\n    ")
        ),
    };
    let controller_json = format!(
        "{{\"adaptive\": {}, \"subkeys\": {}}}",
        args.adaptive, args.subkeys
    );
    let json = format!(
        "{{\n  \"schema_version\": 5,\n  \"path\": \"{path}\",\n  \"mode\": \"{mode}\",\n  \
         \"telemetry\": {},\n  \"slo_ms\": {},\n  \"controller\": {controller_json},\n  \
         \"shards\": {},\n  \"cohort_size\": {},\n  \"conns\": {},\n  \"rate_rps\": {},\n  \
         \"clients\": {},\n  \"requests_per_client\": {},\n  \"completed\": {},\n  \
         \"wall_s\": {},\n  \"throughput_rps\": {},\n  \"phases\": [\n    {}\n  ],\n  \
         \"cohorts\": {},\n  \"full_launches\": {},\n  \"timeout_launches\": {},\n  \
         \"mean_requests_per_launch\": {},\n  \"mean_cohort_fill\": {},\n  \
         \"device_cohorts\": {device_cohorts},\n  \"mean_cohort_device_s\": {},\n  \
         \"shed_503\": {},\n  \"responses_dropped\": {},\n  \"idle_polls\": {},\n  \
         \"reads_paused\": {},\n  \"scrape\": {scrape_json},\n  \
         \"frontier\": {frontier_json},\n  \
         \"overload\": {overload_json}\n}}\n",
        !args.no_telemetry,
        json_f(args.slo_ms),
        args.shards,
        config.cohort_size,
        if args.open_loop { args.conns } else { 0 },
        if args.open_loop {
            json_f(args.rate)
        } else {
            "0".to_string()
        },
        if args.open_loop { 0 } else { args.clients },
        if args.open_loop { 0 } else { args.requests },
        steady.completed,
        json_f(steady.wall_s),
        json_f(steady.throughput_rps),
        phases.join(",\n    "),
        load.stats.cohorts,
        load.stats.full_launches,
        load.stats.timeout_launches,
        json_f(load.stats.mean_requests_per_launch()),
        json_f(load.stats.mean_fill()),
        json_f(mean_cohort_device_s),
        load.stats.shed_503,
        load.stats.responses_dropped,
        load.stats.idle_polls,
        load.stats.reads_paused,
    );
    std::fs::write(&args.out, &json).expect("write result file");
    println!("results written to {}", args.out);

    // The gate runs last so the freshly written result survives for
    // inspection even when the gate trips.
    if let Some(gate_path) = &args.gate {
        run_gate(gate_path, steady.throughput_rps, load.stats.mean_fill());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paced start stagger must come from RNG *output*, not raw
    /// state, and must be distinct per connection: with the warmup seed
    /// schedule, no two of 256 connections may share an offset, every
    /// offset lies inside one mean gap, and drawing twice from the same
    /// generator advances it.
    #[test]
    fn open_loop_start_offsets_are_distinct_across_connections() {
        let gap = 0.125;
        let mut offsets: Vec<f64> = (0..256)
            .map(|i| {
                let mut rng = XorShift64(0x9E37_79B9_7F4A_7C15 ^ (i as u64 + 1));
                start_offset(&mut rng, gap, true)
            })
            .collect();
        for &o in &offsets {
            assert!((0.0..gap).contains(&o), "offset {o} outside [0, {gap})");
        }
        offsets.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        offsets.dedup();
        assert_eq!(offsets.len(), 256, "start offsets collided");

        // Poisson mode draws from the same stream and advances it too.
        let mut rng = XorShift64(0x9E37_79B9_7F4A_7C15 ^ 1);
        let a = start_offset(&mut rng, gap, false);
        let b = start_offset(&mut rng, gap, false);
        assert_ne!(a, b, "generator did not advance between draws");
    }

    /// A zero-duration / zero-completion phase (the `--smoke` shape) must
    /// be flagged `degenerate: true` in the JSON, with the guarded rate
    /// emitted as a plain 0 rather than a division blow-up; a real phase
    /// must not carry the flag.
    #[test]
    fn degenerate_phase_summary_is_flagged_and_parseable() {
        let empty = PhaseResult::from_outcome("drain", PhaseOutcome::default(), 0.0);
        assert!(empty.degenerate);
        assert_eq!(empty.throughput_rps, 0.0);
        let j = phase_json(&empty);
        assert!(j.contains("\"degenerate\": true"), "flag missing in {j}");
        assert!(
            j.contains("\"throughput_rps\": 0.000000"),
            "rate not guarded in {j}"
        );
        // Structural sanity without a JSON dependency: balanced braces,
        // key/value colon per field.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );

        let live = PhaseResult::from_outcome(
            "steady",
            PhaseOutcome {
                latencies_s: vec![0.001, 0.002],
                completed: 2,
                shed: 0,
                errors: 0,
            },
            1.0,
        );
        assert!(!live.degenerate);
        let j = phase_json(&live);
        assert!(j.contains("\"degenerate\": false"), "flag wrong in {j}");
    }

    /// The additive schema-v5 fields — frontier steps and the controller
    /// object — must be well-formed JSON objects carrying every key a
    /// consumer needs to reconstruct the latency/throughput frontier.
    #[test]
    fn frontier_step_json_is_well_formed() {
        let step = FrontierStep {
            rate: 3000.0,
            adaptive: true,
            completed: 2980,
            shed: 0,
            errors: 0,
            throughput_rps: 2975.5,
            p50_ms: 1.25,
            p99_ms: 4.75,
            mean_fill: 0.61,
            full_launches: 80,
            timeout_launches: 11,
        };
        let j = step.json();
        for key in [
            "\"rate_rps\"",
            "\"adaptive\": true",
            "\"completed\": 2980",
            "\"throughput_rps\"",
            "\"p50_ms\"",
            "\"p99_ms\"",
            "\"mean_cohort_fill\"",
            "\"full_launches\": 80",
            "\"timeout_launches\": 11",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
    }

    /// The regression gate must read the baseline's *top-level* steady
    /// numbers, never the per-phase copies nested inside the `phases`
    /// array (those live on single indented lines).
    #[test]
    fn gate_extracts_top_level_fields_only() {
        let baseline = "{\n  \"schema_version\": 5,\n  \"phases\": [\n    \
                        {\"phase\": \"steady\", \"throughput_rps\": 999.0, \
                        \"mean_cohort_fill\": 0.9}\n  ],\n  \
                        \"throughput_rps\": 11983.333333,\n  \
                        \"mean_cohort_fill\": 0.235243,\n  \"overload\": null\n}\n";
        assert_eq!(
            extract_top_level_f64(baseline, "throughput_rps"),
            Some(11983.333333)
        );
        assert_eq!(
            extract_top_level_f64(baseline, "mean_cohort_fill"),
            Some(0.235243)
        );
        assert_eq!(extract_top_level_f64(baseline, "absent"), None);
    }
}
