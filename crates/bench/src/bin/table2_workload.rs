//! **Table 2** — SPECWeb Banking workload characteristics.
//!
//! Per request type: measured dynamic instructions per request (scalar
//! executor, random requests), measured response body size, the Rhythm
//! response-buffer size, the request mix, and backend accesses — next to
//! the paper's reported columns.

use rhythm_banking::types::TABLE2;
use rhythm_bench::fmt::render_table;
use rhythm_bench::measure::{scalar_measurements, workload_avg_instructions, Harness};

fn main() {
    let h = Harness::new();
    let ms = scalar_measurements(&h, 20);

    let rows: Vec<Vec<String>> = ms
        .iter()
        .map(|m| {
            let info = m.ty.info();
            vec![
                info.file_name.trim_end_matches(".php").to_string(),
                format!("{:.0}", m.instructions),
                format!("{}", info.paper_x86_instructions),
                format!("{:.1}", m.body_bytes / 1024.0),
                format!("{:.0}", info.paper_specweb_kb),
                format!("{}", m.ty.response_buffer_bytes() / 1024),
                format!("{}", info.paper_rhythm_kb),
                format!("{:.2}", info.mix_percent),
                format!("{}", info.backend_requests),
            ]
        })
        .collect();

    println!("Table 2: SPECWeb Banking workload characteristics");
    println!("(ours = IR instructions on the scalar executor; paper = x86 instructions)\n");
    println!(
        "{}",
        render_table(
            &[
                "request",
                "instr (ours)",
                "instr (paper)",
                "body KB (ours)",
                "KB (paper)",
                "buf KB (ours)",
                "buf KB (paper)",
                "mix %",
                "backend"
            ],
            &rows
        )
    );

    let avg = workload_avg_instructions(&ms);
    let avg_paper: f64 = TABLE2
        .iter()
        .map(|i| i.paper_x86_instructions as f64 * i.mix_percent / 100.0)
        .sum();
    println!("weighted average instructions/request: ours {avg:.0}, paper {avg_paper:.0}");

    // Shape check: Spearman-ish rank agreement between our counts and the
    // paper's across types.
    let mut ours: Vec<(usize, f64)> = ms
        .iter()
        .enumerate()
        .map(|(i, m)| (i, m.instructions))
        .collect();
    let mut paper: Vec<(usize, f64)> = TABLE2
        .iter()
        .enumerate()
        .map(|(i, t)| (i, t.paper_x86_instructions as f64))
        .collect();
    ours.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    paper.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let rank = |v: &[(usize, f64)]| {
        let mut r = vec![0usize; v.len()];
        for (pos, (idx, _)) in v.iter().enumerate() {
            r[*idx] = pos;
        }
        r
    };
    let (ro, rp) = (rank(&ours), rank(&paper));
    let n = ro.len() as f64;
    let d2: f64 = ro
        .iter()
        .zip(&rp)
        .map(|(a, b)| (*a as f64 - *b as f64).powi(2))
        .sum();
    let rho = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
    println!("rank correlation (ours vs paper instruction counts): rho = {rho:.2}");
}
