//! **Figure 10** — Throughput–efficiency for individual request types on
//! Titan B (dynamic power).
//!
//! The paper's point: types whose Rhythm buffer is close to the required
//! response size (low padding overhead) perform well — the
//! power-of-two rounding makes the response transpose exponentially more
//! expensive for types just past a boundary. We reproduce the per-type
//! scatter and the buffer-overhead correlation.

use rhythm_banking::prelude::RequestType;
use rhythm_bench::fmt::{ratio, render_table};
use rhythm_bench::measure::{scalar_measurements, titan_type_measurement, Harness, MEASURE_COHORT};
use rhythm_platform::presets::{CpuPreset, TitanPlatform, TitanPreset};

fn main() {
    let h = Harness::new();
    eprintln!("[fig10] measuring CPU baselines ...");
    let ms = scalar_measurements(&h, 10);

    // Per-type CPU baselines: i7 throughput and A9 dynamic efficiency for
    // the same type.
    let i7 = CpuPreset::i7_8w();
    let a9 = CpuPreset::a9_2w();
    let titan_b = TitanPreset::of(TitanPlatform::B);

    // IR-to-x86 instruction unit conversion (see measure::cpu_platform_results).
    let scale = rhythm_platform::presets::PAPER_AVG_INSTRUCTIONS
        / rhythm_bench::measure::workload_avg_instructions(&ms);

    let mut rows = Vec::new();
    let mut low_overhead_better = 0.0;
    let mut low_overhead_count: f64 = 0.0;
    let mut high_overhead_better = 0.0;
    let mut high_overhead_count: f64 = 0.0;
    for ty in RequestType::ALL {
        eprintln!("[fig10] {ty} ...");
        let r = titan_type_measurement(&h, ty, TitanPlatform::B, MEASURE_COHORT);
        let m = ms.iter().find(|m| m.ty == ty).expect("measured");
        let i7_tput = i7.throughput(m.instructions * scale);
        let a9_eff = a9.throughput(m.instructions * scale) / a9.dynamic_w();
        let b_eff = r.tput / titan_b.dynamic_w();
        let tput_norm = r.tput / i7_tput;
        let eff_norm = b_eff / a9_eff;

        // Padding overhead: buffer bytes vs actual (padded) body bytes.
        let overhead = ty.response_buffer_bytes() as f64 / m.body_bytes - 1.0;
        if overhead < 0.5 {
            low_overhead_better += eff_norm;
            low_overhead_count += 1.0;
        } else {
            high_overhead_better += eff_norm;
            high_overhead_count += 1.0;
        }
        rows.push(vec![
            ty.to_string(),
            format!("{}", ty.response_buffer_bytes() / 1024),
            format!("{:.0}%", overhead * 100.0),
            ratio(tput_norm),
            ratio(eff_norm),
        ]);
    }

    println!("\nFigure 10: per-type throughput-efficiency on Titan B (dynamic power)\n");
    println!(
        "{}",
        render_table(
            &[
                "request",
                "buf KB",
                "buffer overhead",
                "tput vs i7-8w",
                "dyn eff vs A9-2w"
            ],
            &rows
        )
    );
    println!(
        "mean efficiency (norm) — low-overhead types: {:.2}, high-overhead types: {:.2}",
        low_overhead_better / low_overhead_count.max(1.0),
        high_overhead_better / high_overhead_count.max(1.0),
    );
    println!(
        "paper: buffer sizes close to required sizes perform well (3.5x-5x i7, 105-120% of A9)"
    );
}
