//! **Figure 10** — Throughput–efficiency for individual request types on
//! Titan B (dynamic power).
//!
//! The paper's point: types whose Rhythm buffer is close to the required
//! response size (low padding overhead) perform well — the
//! power-of-two rounding makes the response transpose exponentially more
//! expensive for types just past a boundary. We reproduce the per-type
//! scatter and the buffer-overhead correlation.
//!
//! Flags:
//!
//! * `--trace <out.json>` — feed the per-type measurements into the
//!   `rhythm-core` pipeline with the `rhythm-obs` recorder attached and
//!   write a Chrome trace-event timeline (stage spans, cohort FSM
//!   transitions, latency histograms) loadable in Perfetto.

use rhythm_banking::prelude::RequestType;
use rhythm_bench::fmt::{ratio, render_table};
use rhythm_bench::latency::pipeline_report_traced;
use rhythm_bench::measure::{
    scalar_measurements, titan_type_measurement, Harness, TitanResult, MEASURE_COHORT,
};
use rhythm_obs::TraceRecorder;
use rhythm_platform::presets::{CpuPreset, TitanPlatform, TitanPreset};

/// Run the mixed-traffic pipeline over the measured latencies with the
/// recorder attached and export the Chrome trace.
fn export_trace(path: &str, per_type: Vec<rhythm_bench::measure::TitanTypeResult>) {
    use std::collections::HashMap;
    let map: HashMap<RequestType, f64> = per_type.iter().map(|r| (r.ty, r.tput)).collect();
    let result = TitanResult {
        variant: TitanPlatform::B,
        tput: rhythm_banking::types::weighted_harmonic_mean(|ty| map[&ty]),
        per_type,
    };
    eprintln!("[fig10] tracing pipeline at 70% load ...");
    let rec = TraceRecorder::new();
    let report = pipeline_report_traced(&result, 0.7, 60_000, &rec);
    let json = rec.chrome_json();
    rhythm_obs::validate_chrome_trace(&json).expect("exported trace must be valid");
    std::fs::write(path, &json).expect("write trace file");
    println!("\n{}", rec.summary());
    println!(
        "trace written to {path} ({} bytes, {} requests completed); open it in Perfetto",
        json.len(),
        report.completed
    );
}

fn main() {
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace_path = Some(args.next().expect("--trace needs a path")),
            other => panic!("unknown flag {other:?} (expected --trace <path>)"),
        }
    }

    let h = Harness::new();
    eprintln!("[fig10] measuring CPU baselines ...");
    let ms = scalar_measurements(&h, 10);

    // Per-type CPU baselines: i7 throughput and A9 dynamic efficiency for
    // the same type.
    let i7 = CpuPreset::i7_8w();
    let a9 = CpuPreset::a9_2w();
    let titan_b = TitanPreset::of(TitanPlatform::B);

    // IR-to-x86 instruction unit conversion (see measure::cpu_platform_results).
    let scale = rhythm_platform::presets::PAPER_AVG_INSTRUCTIONS
        / rhythm_bench::measure::workload_avg_instructions(&ms);

    let mut rows = Vec::new();
    let mut per_type = Vec::new();
    let mut low_overhead_better = 0.0;
    let mut low_overhead_count: f64 = 0.0;
    let mut high_overhead_better = 0.0;
    let mut high_overhead_count: f64 = 0.0;
    for ty in RequestType::ALL {
        eprintln!("[fig10] {ty} ...");
        let r = titan_type_measurement(&h, ty, TitanPlatform::B, MEASURE_COHORT);
        let m = ms.iter().find(|m| m.ty == ty).expect("measured");
        let i7_tput = i7.throughput(m.instructions * scale);
        let a9_eff = a9.throughput(m.instructions * scale) / a9.dynamic_w();
        let b_eff = r.tput / titan_b.dynamic_w();
        let tput_norm = r.tput / i7_tput;
        let eff_norm = b_eff / a9_eff;

        // Padding overhead: buffer bytes vs actual (padded) body bytes.
        let overhead = ty.response_buffer_bytes() as f64 / m.body_bytes - 1.0;
        if overhead < 0.5 {
            low_overhead_better += eff_norm;
            low_overhead_count += 1.0;
        } else {
            high_overhead_better += eff_norm;
            high_overhead_count += 1.0;
        }
        rows.push(vec![
            ty.to_string(),
            format!("{}", ty.response_buffer_bytes() / 1024),
            format!("{:.0}%", overhead * 100.0),
            ratio(tput_norm),
            ratio(eff_norm),
        ]);
        per_type.push(r);
    }

    println!("\nFigure 10: per-type throughput-efficiency on Titan B (dynamic power)\n");
    println!(
        "{}",
        render_table(
            &[
                "request",
                "buf KB",
                "buffer overhead",
                "tput vs i7-8w",
                "dyn eff vs A9-2w"
            ],
            &rows
        )
    );
    println!(
        "mean efficiency (norm) — low-overhead types: {:.2}, high-overhead types: {:.2}",
        low_overhead_better / low_overhead_count.max(1.0),
        high_overhead_better / high_overhead_count.max(1.0),
    );
    println!(
        "paper: buffer sizes close to required sizes perform well (3.5x-5x i7, 105-120% of A9)"
    );

    if let Some(path) = trace_path {
        export_trace(&path, per_type);
    }
}
