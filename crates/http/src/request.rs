//! Parsed HTTP request representation and the request parser.

use crate::cookie::Cookies;
use crate::error::ParseError;
use crate::query::Params;

/// HTTP method. Rhythm's pipeline handles the two methods SPECWeb uses.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// `GET` — parameters arrive in the query string.
    Get,
    /// `POST` — parameters arrive urlencoded in the body.
    Post,
}

impl Method {
    /// Parse from the request-line token.
    pub fn from_token(token: &[u8]) -> Result<Self, ParseError> {
        match token {
            b"GET" => Ok(Method::Get),
            b"POST" => Ok(Method::Post),
            _ => Err(ParseError::BadMethod),
        }
    }

    /// Canonical token (`"GET"` / `"POST"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A fully parsed HTTP/1.1 request.
///
/// Produced by [`HttpRequest::parse`]; consumed by the dispatch and process
/// stages of the pipeline.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Decoded path, without the query string (e.g. `/bank/login.php`).
    pub path: String,
    /// Query-string parameters (GET) merged with body parameters (POST).
    pub params: Params,
    /// Cookies from the `Cookie` header.
    pub cookies: Cookies,
    /// `Content-Length` as declared (0 when absent).
    pub content_length: usize,
    /// Raw header count (for stats/validation).
    pub header_count: usize,
    /// Total bytes consumed from the input (headers + body), letting a
    /// reader resume at the next pipelined request.
    pub consumed: usize,
}

impl HttpRequest {
    /// Parse one request from `input`.
    ///
    /// Follows RFC 2616 framing: request line, `\r\n`-separated headers, a
    /// blank line, then `Content-Length` bytes of body. `\n`-only line
    /// endings are tolerated (SPECWeb clients emit both).
    ///
    /// # Errors
    ///
    /// * [`ParseError::Truncated`] — the header terminator or body has not
    ///   fully arrived (callers retry after reading more bytes).
    /// * Other variants for malformed requests.
    ///
    /// # Example
    ///
    /// ```
    /// use rhythm_http::{HttpRequest, Method};
    ///
    /// let raw = b"GET /bank/account.php?userid=77 HTTP/1.1\r\n\
    ///             Host: example.com\r\n\
    ///             Cookie: MY_LOGIN=abc123\r\n\r\n";
    /// let req = HttpRequest::parse(raw)?;
    /// assert_eq!(req.method, Method::Get);
    /// assert_eq!(req.path, "/bank/account.php");
    /// assert_eq!(req.params.get("userid"), Some("77"));
    /// assert_eq!(req.cookies.get("MY_LOGIN"), Some("abc123"));
    /// # Ok::<(), rhythm_http::ParseError>(())
    /// ```
    pub fn parse(input: &[u8]) -> Result<Self, ParseError> {
        Self::parse_inner(input, usize::MAX)
    }

    /// Parse one request from `input`, rejecting requests whose total
    /// size (headers + declared body) exceeds `max_bytes`.
    ///
    /// This is the entry point for network readers: a plain
    /// [`HttpRequest::parse`] reports a missing body as retryable
    /// [`ParseError::Truncated`]/[`ParseError::BodyTooShort`], so a
    /// `Content-Length` larger than the client will ever send would make
    /// a naive reader buffer forever. With a cap, such requests fail fast
    /// with the non-retryable [`ParseError::TooLarge`] (readers answer
    /// 413 and close):
    ///
    /// * headers that do not terminate within `max_bytes` are `TooLarge`
    ///   once `max_bytes` bytes have been buffered;
    /// * a declared `Content-Length` that would push the request past
    ///   `max_bytes` — including values that overflow `usize` — is
    ///   `TooLarge` immediately, before any body byte arrives.
    ///
    /// # Errors
    ///
    /// Same as [`HttpRequest::parse`], plus [`ParseError::TooLarge`].
    pub fn parse_limited(input: &[u8], max_bytes: usize) -> Result<Self, ParseError> {
        Self::parse_inner(input, max_bytes)
    }

    fn parse_inner(input: &[u8], max_bytes: usize) -> Result<Self, ParseError> {
        let header_end = match find_header_end(input) {
            Some(h) => h,
            // No terminator yet: retryable only while the buffer can
            // still grow within the cap.
            None if input.len() >= max_bytes => {
                return Err(ParseError::TooLarge {
                    needed: input.len().saturating_add(1),
                    limit: max_bytes,
                })
            }
            None => return Err(ParseError::Truncated),
        };
        let head = &input[..header_end.body_start - header_end.blank_len];
        let mut lines = head.split(|&b| b == b'\n').map(trim_cr);

        let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
        let mut parts = request_line.split(|&b| b == b' ').filter(|p| !p.is_empty());
        let method = Method::from_token(parts.next().ok_or(ParseError::BadRequestLine)?)?;
        let target = parts.next().ok_or(ParseError::BadRequestLine)?;
        let version = parts.next().ok_or(ParseError::BadRequestLine)?;
        if !version.starts_with(b"HTTP/") {
            return Err(ParseError::BadRequestLine);
        }

        let (raw_path, raw_query) = match target.iter().position(|&b| b == b'?') {
            Some(i) => (&target[..i], &target[i + 1..]),
            None => (target, &[][..]),
        };
        let path = crate::query::url_decode(raw_path)?;
        let mut params = Params::parse(raw_query)?;

        let mut cookies = Cookies::new();
        let mut content_length = 0usize;
        let mut header_count = 0usize;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            header_count += 1;
            let colon = line
                .iter()
                .position(|&b| b == b':')
                .ok_or(ParseError::BadHeader)?;
            let name = &line[..colon];
            let value = trim_ws(&line[colon + 1..]);
            if eq_ignore_case(name, b"content-length") {
                content_length = std::str::from_utf8(value)
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
                    .ok_or(ParseError::BadContentLength)?;
            } else if eq_ignore_case(name, b"cookie") {
                cookies.parse_header(value);
            }
        }

        let body_start = header_end.body_start;
        let body_end = match body_start.checked_add(content_length) {
            Some(end) => end,
            // The declared length overflows address space: unlimited
            // parsing keeps the historical BadContentLength; a capped
            // reader reports it as (maximally) too large.
            None if max_bytes == usize::MAX => return Err(ParseError::BadContentLength),
            None => {
                return Err(ParseError::TooLarge {
                    needed: usize::MAX,
                    limit: max_bytes,
                })
            }
        };
        if body_end > max_bytes {
            return Err(ParseError::TooLarge {
                needed: body_end,
                limit: max_bytes,
            });
        }
        if body_end > input.len() {
            return Err(ParseError::BodyTooShort {
                declared: content_length,
                available: input.len() - body_start,
            });
        }
        if method == Method::Post && content_length > 0 {
            let body = &input[body_start..body_end];
            for (k, v) in Params::parse(body)?.iter() {
                params.push(k, v);
            }
        }

        Ok(HttpRequest {
            method,
            path,
            params,
            cookies,
            content_length,
            header_count,
            consumed: body_end,
        })
    }

    /// The request's "type key": the final path component (e.g.
    /// `login.php`), which Rhythm cohorts group by.
    pub fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

struct HeaderEnd {
    body_start: usize,
    blank_len: usize,
}

/// Find the end of the header section; supports `\r\n\r\n` and `\n\n`.
fn find_header_end(input: &[u8]) -> Option<HeaderEnd> {
    let mut i = 0;
    while i < input.len() {
        if input[i] == b'\n' {
            if input.get(i + 1) == Some(&b'\n') {
                return Some(HeaderEnd {
                    body_start: i + 2,
                    blank_len: 1,
                });
            }
            if input.get(i + 1) == Some(&b'\r') && input.get(i + 2) == Some(&b'\n') {
                return Some(HeaderEnd {
                    body_start: i + 3,
                    blank_len: 2,
                });
            }
        }
        i += 1;
    }
    None
}

fn trim_cr(line: &[u8]) -> &[u8] {
    line.strip_suffix(b"\r").unwrap_or(line)
}

fn trim_ws(mut s: &[u8]) -> &[u8] {
    while let [b' ' | b'\t', rest @ ..] = s {
        s = rest;
    }
    while let [rest @ .., b' ' | b'\t'] = s {
        s = rest;
    }
    s
}

fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.eq_ignore_ascii_case(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_with_query() {
        let req = HttpRequest::parse(b"GET /a/b.php?x=1&y=2 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/a/b.php");
        assert_eq!(req.file_name(), "b.php");
        assert_eq!(req.params.get("y"), Some("2"));
        assert_eq!(req.header_count, 1);
    }

    #[test]
    fn post_with_body_params() {
        let raw =
            b"POST /bank/login.php HTTP/1.1\r\nContent-Length: 21\r\n\r\nuserid=7&password=abc";
        let req = HttpRequest::parse(raw).unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.content_length, 21);
        assert_eq!(req.params.get("password"), Some("abc"));
        assert_eq!(req.consumed, raw.len());
    }

    #[test]
    fn truncated_headers() {
        assert_eq!(
            HttpRequest::parse(b"GET / HTTP/1.1\r\nHost:").unwrap_err(),
            ParseError::Truncated
        );
    }

    #[test]
    fn body_too_short_is_retryable() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert!(matches!(
            HttpRequest::parse(raw).unwrap_err(),
            ParseError::BodyTooShort { declared: 50, .. }
        ));
    }

    #[test]
    fn lf_only_line_endings() {
        let req = HttpRequest::parse(b"GET /p HTTP/1.0\nHost: h\n\n").unwrap();
        assert_eq!(req.path, "/p");
    }

    #[test]
    fn bad_method_rejected() {
        assert_eq!(
            HttpRequest::parse(b"BREW /pot HTTP/1.1\r\n\r\n").unwrap_err(),
            ParseError::BadMethod
        );
    }

    #[test]
    fn bad_version_rejected() {
        assert_eq!(
            HttpRequest::parse(b"GET / SPDY/9\r\n\r\n").unwrap_err(),
            ParseError::BadRequestLine
        );
    }

    #[test]
    fn header_without_colon_rejected() {
        assert_eq!(
            HttpRequest::parse(b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n").unwrap_err(),
            ParseError::BadHeader
        );
    }

    #[test]
    fn content_length_case_insensitive() {
        let raw = b"POST /x HTTP/1.1\r\ncOnTeNt-LeNgTh: 3\r\n\r\na=b";
        let req = HttpRequest::parse(raw).unwrap();
        assert_eq!(req.content_length, 3);
    }

    #[test]
    fn consumed_supports_pipelining() {
        let raw = b"GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\n";
        let first = HttpRequest::parse(raw).unwrap();
        let second = HttpRequest::parse(&raw[first.consumed..]).unwrap();
        assert_eq!(first.path, "/one");
        assert_eq!(second.path, "/two");
    }

    #[test]
    fn percent_encoded_path() {
        let req = HttpRequest::parse(b"GET /a%20b.php HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/a b.php");
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::Get.to_string(), "GET");
        assert_eq!(Method::Post.as_str(), "POST");
    }

    #[test]
    fn limited_parse_matches_unlimited_within_cap() {
        let raw =
            b"POST /bank/login.php HTTP/1.1\r\nContent-Length: 21\r\n\r\nuserid=7&password=abc";
        assert_eq!(
            HttpRequest::parse_limited(raw, 4096).unwrap(),
            HttpRequest::parse(raw).unwrap()
        );
    }

    #[test]
    fn huge_content_length_is_too_large_not_retryable() {
        // Declared body far beyond the cap: must fail fast, not report
        // the retryable BodyTooShort that makes readers buffer forever.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10737418240\r\n\r\n";
        match HttpRequest::parse_limited(raw, 65536).unwrap_err() {
            ParseError::TooLarge { needed, limit } => {
                assert_eq!(limit, 65536);
                assert!(needed > 10_000_000_000);
            }
            e => panic!("expected TooLarge, got {e:?}"),
        }
        // Without a cap the same request stays retryable (historical
        // behaviour for virtual-clock harnesses that pre-frame input).
        assert!(matches!(
            HttpRequest::parse(raw).unwrap_err(),
            ParseError::BodyTooShort { .. }
        ));
    }

    #[test]
    fn usize_max_content_length_overflow_is_too_large() {
        // body_start + usize::MAX overflows; the capped path must report
        // TooLarge rather than panicking or claiming a malformed number.
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        match HttpRequest::parse_limited(raw.as_bytes(), 65536).unwrap_err() {
            ParseError::TooLarge { needed, limit } => {
                assert_eq!(needed, usize::MAX);
                assert_eq!(limit, 65536);
            }
            e => panic!("expected TooLarge, got {e:?}"),
        }
        // Unlimited parse keeps the historical BadContentLength.
        assert_eq!(
            HttpRequest::parse(raw.as_bytes()).unwrap_err(),
            ParseError::BadContentLength
        );
        // One past usize::MAX does not parse as usize at all.
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}9\r\n\r\n",
            usize::MAX
        );
        assert_eq!(
            HttpRequest::parse_limited(raw.as_bytes(), 65536).unwrap_err(),
            ParseError::BadContentLength
        );
    }

    #[test]
    fn unterminated_headers_hit_cap() {
        // Headers keep growing without a terminator: retryable below the
        // cap, TooLarge at it.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 100));
        assert_eq!(
            HttpRequest::parse_limited(&raw, 1024).unwrap_err(),
            ParseError::Truncated
        );
        assert!(matches!(
            HttpRequest::parse_limited(&raw, raw.len()).unwrap_err(),
            ParseError::TooLarge { .. }
        ));
    }

    #[test]
    fn body_exactly_at_cap_is_accepted() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\na=b";
        assert!(HttpRequest::parse_limited(raw, raw.len()).is_ok());
        assert!(matches!(
            HttpRequest::parse_limited(raw, raw.len() - 1).unwrap_err(),
            ParseError::TooLarge { .. }
        ));
    }
}
