//! HTTP response construction with Content-Length backpatching.
//!
//! Rhythm generates the response header *together with* the body in one
//! pass (paper §4.3.2 "Whitespace Padding in HTML Headers"): the
//! `Content-Length` value is not known until the body is finished, so the
//! builder reserves a fixed run of whitespace (10 characters — enough for
//! any 32-bit length) and backpatches the digits afterwards. The HTTP
//! grammar permits trailing whitespace in a field value, which is exactly
//! the trick the paper exploits.

use crate::cookie::set_cookie;

/// Width of the whitespace run reserved for the `Content-Length` value.
pub const RESERVED_CONTENT_LENGTH: usize = 10;

/// Single-pass response builder.
///
/// # Example
///
/// ```
/// use rhythm_http::ResponseBuilder;
///
/// let mut r = ResponseBuilder::new(200, "OK");
/// r.header("Content-Type", "text/html");
/// r.reserve_content_length();
/// r.finish_headers();
/// r.write_str("<html>hi</html>");
/// let bytes = r.finish();
/// let text = String::from_utf8(bytes).unwrap();
/// assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
/// assert!(text.contains("Content-Length: 15"));
/// assert!(text.ends_with("<html>hi</html>"));
/// ```
#[derive(Clone, Debug)]
pub struct ResponseBuilder {
    buf: Vec<u8>,
    clen_value_pos: Option<usize>,
    body_start: Option<usize>,
}

impl ResponseBuilder {
    /// Start a response with the given status.
    pub fn new(status: u16, reason: &str) -> Self {
        let mut buf = Vec::with_capacity(1024);
        buf.extend_from_slice(b"HTTP/1.1 ");
        buf.extend_from_slice(status.to_string().as_bytes());
        buf.push(b' ');
        buf.extend_from_slice(reason.as_bytes());
        buf.extend_from_slice(b"\r\n");
        ResponseBuilder {
            buf,
            clen_value_pos: None,
            body_start: None,
        }
    }

    /// Append a header line.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Self::finish_headers`].
    pub fn header(&mut self, name: &str, value: &str) -> &mut Self {
        assert!(self.body_start.is_none(), "headers already finished");
        self.buf.extend_from_slice(name.as_bytes());
        self.buf.extend_from_slice(b": ");
        self.buf.extend_from_slice(value.as_bytes());
        self.buf.extend_from_slice(b"\r\n");
        self
    }

    /// Append a `Set-Cookie` header.
    pub fn cookie(&mut self, name: &str, value: &str, path: &str) -> &mut Self {
        let v = set_cookie(name, value, path);
        self.header("Set-Cookie", &v)
    }

    /// Emit the `Content-Length` header with a reserved whitespace run to
    /// be backpatched by [`Self::finish`].
    ///
    /// # Panics
    ///
    /// Panics if called twice or after [`Self::finish_headers`].
    pub fn reserve_content_length(&mut self) -> &mut Self {
        assert!(self.body_start.is_none(), "headers already finished");
        assert!(
            self.clen_value_pos.is_none(),
            "content-length already reserved"
        );
        self.buf.extend_from_slice(b"Content-Length: ");
        self.clen_value_pos = Some(self.buf.len());
        self.buf.extend_from_slice(&[b' '; RESERVED_CONTENT_LENGTH]);
        self.buf.extend_from_slice(b"\r\n");
        self
    }

    /// Terminate the header section; body writes follow.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn finish_headers(&mut self) -> &mut Self {
        assert!(self.body_start.is_none(), "headers already finished");
        self.buf.extend_from_slice(b"\r\n");
        self.body_start = Some(self.buf.len());
        self
    }

    /// Append body bytes.
    ///
    /// # Panics
    ///
    /// Panics if the headers have not been finished.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        assert!(self.body_start.is_some(), "finish_headers first");
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Append a body string.
    ///
    /// # Panics
    ///
    /// Panics if the headers have not been finished.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes())
    }

    /// Current body length in bytes (0 before [`Self::finish_headers`]).
    pub fn body_len(&self) -> usize {
        self.body_start.map_or(0, |s| self.buf.len() - s)
    }

    /// Finalize: backpatch the reserved `Content-Length` digits (if
    /// reserved) and return the raw response bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let body_len = self.body_len();
        if let Some(pos) = self.clen_value_pos {
            let digits = body_len.to_string();
            debug_assert!(digits.len() <= RESERVED_CONTENT_LENGTH);
            self.buf[pos..pos + digits.len()].copy_from_slice(digits.as_bytes());
        }
        self.buf
    }
}

/// Parse the `Content-Length` value out of raw response bytes (test
/// helper and validator support; tolerates the trailing padding).
pub fn parsed_content_length(response: &[u8]) -> Option<usize> {
    // Only the header section need be UTF-8; bodies may be binary.
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or(response.len());
    let text = std::str::from_utf8(&response[..header_end]).ok()?;
    for line in text.split("\r\n") {
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .strip_prefix("Content-Length:")
            .or_else(|| line.strip_prefix("content-length:"))
        {
            return v.trim().parse().ok();
        }
    }
    None
}

/// Split a raw response into `(headers, body)` at the blank line.
pub fn split_response(response: &[u8]) -> Option<(&[u8], &[u8])> {
    let pos = response.windows(4).position(|w| w == b"\r\n\r\n")?;
    Some((&response[..pos], &response[pos + 4..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpatch_matches_body() {
        let mut r = ResponseBuilder::new(200, "OK");
        r.reserve_content_length();
        r.finish_headers();
        r.write(&vec![b'x'; 12345]);
        let out = r.finish();
        assert_eq!(parsed_content_length(&out), Some(12345));
        let (_, body) = split_response(&out).unwrap();
        assert_eq!(body.len(), 12345);
    }

    #[test]
    fn reserved_run_is_exactly_ten() {
        let mut r = ResponseBuilder::new(200, "OK");
        r.reserve_content_length();
        r.finish_headers();
        let out = r.finish();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(&format!("Content-Length: 0{}\r\n", " ".repeat(9))));
    }

    #[test]
    fn no_reservation_no_patch() {
        let mut r = ResponseBuilder::new(404, "Not Found");
        r.finish_headers();
        r.write_str("nope");
        let out = r.finish();
        assert_eq!(parsed_content_length(&out), None);
        assert!(out.starts_with(b"HTTP/1.1 404 Not Found\r\n"));
    }

    #[test]
    fn cookie_header_rendered() {
        let mut r = ResponseBuilder::new(200, "OK");
        r.cookie("SID", "tok", "/bank");
        r.finish_headers();
        let out = r.finish();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Set-Cookie: SID=tok; path=/bank\r\n"));
    }

    #[test]
    #[should_panic(expected = "headers already finished")]
    fn header_after_finish_panics() {
        let mut r = ResponseBuilder::new(200, "OK");
        r.finish_headers();
        r.header("X", "y");
    }

    #[test]
    #[should_panic(expected = "finish_headers first")]
    fn body_before_finish_headers_panics() {
        let mut r = ResponseBuilder::new(200, "OK");
        r.write(b"early");
    }

    #[test]
    fn split_response_finds_blank_line() {
        let raw = b"HTTP/1.1 200 OK\r\nA: b\r\n\r\nBODY";
        let (head, body) = split_response(raw).unwrap();
        assert!(head.ends_with(b"A: b"));
        assert_eq!(body, b"BODY");
        assert!(split_response(b"no blank line").is_none());
    }
}
