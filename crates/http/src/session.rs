//! Host-side HTTP session store (token → user), used by the native
//! (CPU) banking server. The device-resident hash-table session array
//! lives in `rhythm-banking::session_array`.

use std::collections::HashMap;

/// A session token as carried in the login cookie.
pub type SessionToken = u64;

/// Host session store: create at login, look up per request, destroy at
/// logout.
///
/// Tokens are deterministic mixes of a monotonic counter, so runs are
/// reproducible; uniqueness is guaranteed by the counter.
///
/// # Example
///
/// ```
/// use rhythm_http::session::SessionStore;
///
/// let mut s = SessionStore::new();
/// let tok = s.create(42);
/// assert_eq!(s.user(tok), Some(42));
/// assert!(s.destroy(tok));
/// assert_eq!(s.user(tok), None);
/// ```
#[derive(Clone, Default, Debug)]
pub struct SessionStore {
    sessions: HashMap<SessionToken, u32>,
    counter: u64,
}

impl SessionStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a session for `user`, returning its token.
    pub fn create(&mut self, user: u32) -> SessionToken {
        self.counter += 1;
        let token = mix(self.counter);
        self.sessions.insert(token, user);
        token
    }

    /// Look up the user for a token.
    pub fn user(&self, token: SessionToken) -> Option<u32> {
        self.sessions.get(&token).copied()
    }

    /// Destroy a session; returns whether it existed.
    pub fn destroy(&mut self, token: SessionToken) -> bool {
        self.sessions.remove(&token).is_some()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

/// SplitMix64 finalizer: invertible, so counter uniqueness implies token
/// uniqueness.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Render a token as the cookie value (16 hex digits).
pub fn token_to_cookie(token: SessionToken) -> String {
    format!("{token:016x}")
}

/// Parse a cookie value back into a token.
pub fn cookie_to_token(value: &str) -> Option<SessionToken> {
    u64::from_str_radix(value, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_destroy() {
        let mut s = SessionStore::new();
        let t1 = s.create(1);
        let t2 = s.create(2);
        assert_ne!(t1, t2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.user(t2), Some(2));
        assert!(s.destroy(t1));
        assert!(!s.destroy(t1), "double destroy is false");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn tokens_unique_over_many_sessions() {
        let mut s = SessionStore::new();
        let mut seen = std::collections::HashSet::new();
        for u in 0..10_000 {
            assert!(seen.insert(s.create(u)), "token collision");
        }
    }

    #[test]
    fn cookie_roundtrip() {
        let mut s = SessionStore::new();
        let t = s.create(9);
        let c = token_to_cookie(t);
        assert_eq!(c.len(), 16);
        assert_eq!(cookie_to_token(&c), Some(t));
        assert_eq!(cookie_to_token("not-hex"), None);
    }
}
