//! # rhythm-http
//!
//! HTTP/1.1 substrate for the Rhythm cohort server, built from scratch:
//!
//! * [`request`] — request parsing (method, target, query string, cookies,
//!   `Content-Length`-framed bodies, pipelining support),
//! * [`response`] — single-pass response building with the paper's
//!   reserved-whitespace `Content-Length` backpatch,
//! * [`padding`] — whitespace padding for warp write-pointer alignment and
//!   the padded-vs-plain equivalence check used to validate kernels,
//! * [`cookie`], [`query`], [`session`] — the supporting pieces.
//!
//! Everything here is deterministic, allocation-conscious, and shared by
//! both the native (CPU) banking handlers and the validation harness for
//! the SIMT kernels.
//!
//! ```
//! use rhythm_http::{HttpRequest, ResponseBuilder};
//!
//! let req = HttpRequest::parse(
//!     b"GET /bank/login.php?userid=7&password=x HTTP/1.1\r\n\r\n")?;
//! let mut resp = ResponseBuilder::new(200, "OK");
//! resp.header("Content-Type", "text/html");
//! resp.reserve_content_length();
//! resp.finish_headers();
//! resp.write_str(&format!("<html>hello user {}</html>",
//!                         req.params.get("userid").unwrap_or("?")));
//! let bytes = resp.finish();
//! assert!(bytes.starts_with(b"HTTP/1.1 200 OK"));
//! # Ok::<(), rhythm_http::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cookie;
pub mod error;
pub mod padding;
pub mod query;
pub mod request;
pub mod response;
pub mod session;

pub use cookie::Cookies;
pub use error::ParseError;
pub use query::Params;
pub use request::{HttpRequest, Method};
pub use response::{ResponseBuilder, RESERVED_CONTENT_LENGTH};
pub use session::SessionStore;
