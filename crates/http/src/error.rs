//! Error types for HTTP parsing and response construction.

use std::fmt;

/// Failure to parse an HTTP/1.1 request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// The request bytes ended before a full request was present.
    Truncated,
    /// The request line was malformed (missing method/target/version).
    BadRequestLine,
    /// Unsupported HTTP method.
    BadMethod,
    /// A header line had no `:` separator or invalid characters.
    BadHeader,
    /// The `Content-Length` value was not a number.
    BadContentLength,
    /// The declared body length exceeds the supplied bytes.
    BodyTooShort {
        /// Declared `Content-Length`.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A percent-escape in the target/query was malformed.
    BadEscape,
    /// The request (headers + declared body) exceeds the reader's size
    /// cap. Unlike [`ParseError::Truncated`] this is **not** retryable:
    /// buffering more bytes can never complete the request, so readers
    /// answer 413 and close instead of buffering without bound.
    TooLarge {
        /// Bytes the full request would need (`usize::MAX` when the
        /// declared `Content-Length` overflows address space).
        needed: usize,
        /// The reader's configured cap.
        limit: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "request truncated before header terminator"),
            ParseError::BadRequestLine => write!(f, "malformed request line"),
            ParseError::BadMethod => write!(f, "unsupported http method"),
            ParseError::BadHeader => write!(f, "malformed header line"),
            ParseError::BadContentLength => write!(f, "content-length is not a valid number"),
            ParseError::BodyTooShort {
                declared,
                available,
            } => write!(f, "body too short: declared {declared}, got {available}"),
            ParseError::BadEscape => write!(f, "malformed percent escape"),
            ParseError::TooLarge { needed, limit } => {
                write!(f, "request too large: needs {needed} bytes, limit {limit}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ParseError::Truncated.to_string().contains("truncated"));
        let e = ParseError::BodyTooShort {
            declared: 10,
            available: 3,
        };
        assert!(e.to_string().contains("declared 10"));
    }
}
