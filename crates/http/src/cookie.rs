//! `Cookie` header parsing and `Set-Cookie` construction.

/// Cookies parsed from a request's `Cookie` header(s).
///
/// # Example
///
/// ```
/// use rhythm_http::cookie::Cookies;
///
/// let mut c = Cookies::new();
/// c.parse_header(b"MY_LOGIN=tok123; theme=dark");
/// assert_eq!(c.get("MY_LOGIN"), Some("tok123"));
/// assert_eq!(c.get("theme"), Some("dark"));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Cookies {
    items: Vec<(String, String)>,
}

impl Cookies {
    /// An empty cookie jar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse one `Cookie:` header value, appending its pairs. Malformed
    /// fragments (no `=`) are skipped, per the robustness convention for
    /// cookie handling.
    pub fn parse_header(&mut self, value: &[u8]) {
        for part in value.split(|&b| b == b';') {
            let part = trim(part);
            if let Some(eq) = part.iter().position(|&b| b == b'=') {
                let k = String::from_utf8_lossy(trim(&part[..eq])).into_owned();
                let v = String::from_utf8_lossy(trim(&part[eq + 1..])).into_owned();
                if !k.is_empty() {
                    self.items.push((k, v));
                }
            }
        }
    }

    /// First cookie named `name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.items
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Number of cookies.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no cookies were sent.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.items.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Insert a cookie programmatically.
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.items.push((name.into(), value.into()));
    }
}

/// Render a `Set-Cookie` header value for a session cookie scoped to `path`.
pub fn set_cookie(name: &str, value: &str, path: &str) -> String {
    format!("{name}={value}; path={path}")
}

fn trim(mut s: &[u8]) -> &[u8] {
    while let [b' ' | b'\t', rest @ ..] = s {
        s = rest;
    }
    while let [rest @ .., b' ' | b'\t'] = s {
        s = rest;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiple_cookies() {
        let mut c = Cookies::new();
        c.parse_header(b"a=1; b=2;c=3");
        assert_eq!(c.len(), 3);
        assert_eq!(c.get("c"), Some("3"));
    }

    #[test]
    fn skips_malformed_fragments() {
        let mut c = Cookies::new();
        c.parse_header(b"ok=yes; garbage; =novalue");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("ok"), Some("yes"));
    }

    #[test]
    fn multiple_headers_accumulate() {
        let mut c = Cookies::new();
        c.parse_header(b"a=1");
        c.parse_header(b"b=2");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_value_allowed() {
        let mut c = Cookies::new();
        c.parse_header(b"empty=");
        assert_eq!(c.get("empty"), Some(""));
    }

    #[test]
    fn set_cookie_format() {
        assert_eq!(set_cookie("SID", "x9", "/bank"), "SID=x9; path=/bank");
    }

    #[test]
    fn iteration_order_stable() {
        let mut c = Cookies::new();
        c.parse_header(b"z=26; a=1");
        let names: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["z", "a"]);
    }
}
