//! Query-string and form-body parameter parsing
//! (`application/x-www-form-urlencoded`).

use crate::error::ParseError;

/// An ordered list of decoded `key=value` parameters.
///
/// Order is preserved because SPECWeb form bodies are order-sensitive in
/// places; lookup is linear (parameter lists are tiny).
///
/// # Example
///
/// ```
/// use rhythm_http::query::Params;
///
/// let p = Params::parse(b"userid=4711&action=log+in%21")?;
/// assert_eq!(p.get("userid"), Some("4711"));
/// assert_eq!(p.get("action"), Some("log in!"));
/// assert_eq!(p.get("missing"), None);
/// # Ok::<(), rhythm_http::ParseError>(())
/// ```
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Params {
    items: Vec<(String, String)>,
}

impl Params {
    /// An empty parameter list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse an urlencoded byte string (`a=1&b=two`).
    ///
    /// # Errors
    ///
    /// Fails on malformed percent escapes.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        let mut items = Vec::new();
        if bytes.is_empty() {
            return Ok(Params { items });
        }
        for pair in bytes.split(|&b| b == b'&') {
            if pair.is_empty() {
                continue;
            }
            let (k, v) = match pair.iter().position(|&b| b == b'=') {
                Some(i) => (&pair[..i], &pair[i + 1..]),
                None => (pair, &[][..]),
            };
            items.push((url_decode(k)?, url_decode(v)?));
        }
        Ok(Params { items })
    }

    /// Value of the first parameter named `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.items
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Value of `key` parsed as `u32`.
    pub fn get_u32(&self, key: &str) -> Option<u32> {
        self.get(key).and_then(|v| v.parse().ok())
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no parameters were supplied.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate over `(key, value)` pairs in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.items.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Append a parameter (used by tests and request generators).
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.items.push((key.into(), value.into()));
    }
}

impl FromIterator<(String, String)> for Params {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        Params {
            items: iter.into_iter().collect(),
        }
    }
}

/// Decode `%XX` escapes and `+` (space) from an urlencoded component.
///
/// # Errors
///
/// Fails with [`ParseError::BadEscape`] on truncated or non-hex escapes.
pub fn url_decode(bytes: &[u8]) -> Result<String, ParseError> {
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hi = hex(bytes.get(i + 1).copied())?;
                let lo = hex(bytes.get(i + 2).copied())?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| ParseError::BadEscape)
}

fn hex(b: Option<u8>) -> Result<u8, ParseError> {
    match b {
        Some(b @ b'0'..=b'9') => Ok(b - b'0'),
        Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
        Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
        _ => Err(ParseError::BadEscape),
    }
}

/// Encode a string component for inclusion in a query string.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_pairs() {
        let p = Params::parse(b"a=1&b=2&c=3").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.get("b"), Some("2"));
    }

    #[test]
    fn missing_equals_is_empty_value() {
        let p = Params::parse(b"flag&x=1").unwrap();
        assert_eq!(p.get("flag"), Some(""));
        assert_eq!(p.get("x"), Some("1"));
    }

    #[test]
    fn empty_input() {
        let p = Params::parse(b"").unwrap();
        assert!(p.is_empty());
        assert_eq!(p.get("a"), None);
    }

    #[test]
    fn plus_and_percent_decoding() {
        let p = Params::parse(b"msg=hello+world%21").unwrap();
        assert_eq!(p.get("msg"), Some("hello world!"));
    }

    #[test]
    fn bad_escape_rejected() {
        assert_eq!(Params::parse(b"a=%G1").unwrap_err(), ParseError::BadEscape);
        assert_eq!(Params::parse(b"a=%2").unwrap_err(), ParseError::BadEscape);
        assert_eq!(Params::parse(b"a=%").unwrap_err(), ParseError::BadEscape);
    }

    #[test]
    fn get_u32_parses_numbers() {
        let p = Params::parse(b"userid=90125&name=yes").unwrap();
        assert_eq!(p.get_u32("userid"), Some(90125));
        assert_eq!(p.get_u32("name"), None);
    }

    #[test]
    fn duplicate_keys_first_wins_on_get() {
        let p = Params::parse(b"k=first&k=second").unwrap();
        assert_eq!(p.get("k"), Some("first"));
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let original = "user name/40% +x~";
        let enc = url_encode(original);
        assert_eq!(url_decode(enc.as_bytes()).unwrap(), original);
    }

    #[test]
    fn from_iterator() {
        let p: Params = vec![("a".to_string(), "1".to_string())]
            .into_iter()
            .collect();
        assert_eq!(p.get("a"), Some("1"));
    }
}
