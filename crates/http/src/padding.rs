//! Whitespace padding for lane alignment (paper §4.3.2).
//!
//! When a warp of lanes generates HTML in lockstep, data-dependent field
//! widths (account balances, names) desynchronize the lanes' write
//! pointers and destroy coalescing. Rhythm exploits the HTML grammar —
//! any number of linear whitespace characters may follow a newline — to
//! re-align: after each dynamic fragment, every lane pads its line with
//! spaces up to the warp-wide maximum width (computed with a butterfly
//! max-reduction on the device).
//!
//! This module is the host-side mirror of that mechanism: given the
//! per-lane dynamic fragment widths, it computes the padding each lane
//! must emit, and provides helpers the native handlers and the validator
//! use to produce/verify padded content.

/// Padding a lane must emit so its fragment reaches the cohort maximum.
///
/// # Panics
///
/// Panics if `len > max` (the "maximum" was not actually the maximum).
pub fn align_pad(len: usize, max: usize) -> usize {
    assert!(
        len <= max,
        "fragment ({len}) longer than cohort max ({max})"
    );
    max - len
}

/// Compute per-lane padding for a set of fragment widths, i.e. the result
/// of a warp max-reduction followed by [`align_pad`] on each lane.
///
/// Returns `(max_width, paddings)`.
///
/// # Example
///
/// ```
/// use rhythm_http::padding::cohort_padding;
///
/// let (max, pads) = cohort_padding(&[3, 7, 5]);
/// assert_eq!(max, 7);
/// assert_eq!(pads, vec![4, 0, 2]);
/// ```
pub fn cohort_padding(widths: &[usize]) -> (usize, Vec<usize>) {
    let max = widths.iter().copied().max().unwrap_or(0);
    let pads = widths.iter().map(|&w| max - w).collect();
    (max, pads)
}

/// Append `n` space characters to `buf`.
pub fn write_padding(buf: &mut Vec<u8>, n: usize) {
    buf.resize(buf.len() + n, b' ');
}

/// Write `fragment` followed by padding spaces up to `max` and then a
/// newline — the canonical padded-line emission used after each dynamic
/// HTML value.
///
/// # Panics
///
/// Panics if the fragment exceeds `max`.
pub fn write_aligned_line(buf: &mut Vec<u8>, fragment: &[u8], max: usize) {
    buf.extend_from_slice(fragment);
    write_padding(buf, align_pad(fragment.len(), max));
    buf.push(b'\n');
}

/// Check that `content` ignoring trailing spaces on each line equals
/// `expected` ignoring trailing spaces on each line. This is how padded
/// (cohort) output is validated against unpadded (scalar) output: HTML
/// semantics are unchanged by the padding.
pub fn eq_modulo_padding(a: &[u8], b: &[u8]) -> bool {
    let norm = |s: &[u8]| -> Vec<Vec<u8>> {
        s.split(|&c| c == b'\n')
            .map(|line| {
                let mut l = line.to_vec();
                while l.last() == Some(&b' ') {
                    l.pop();
                }
                l
            })
            .collect()
    };
    norm(a) == norm(b)
}

/// Round a byte size up to the next power of two — Rhythm's response
/// buffers use power-of-two sizes so the transpose divides evenly across
/// hardware (paper §5.1). Sizes of 0 round to 1.
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_pad_basic() {
        assert_eq!(align_pad(3, 10), 7);
        assert_eq!(align_pad(10, 10), 0);
    }

    #[test]
    #[should_panic(expected = "longer than cohort max")]
    fn align_pad_rejects_bad_max() {
        align_pad(11, 10);
    }

    #[test]
    fn cohort_padding_empty() {
        let (max, pads) = cohort_padding(&[]);
        assert_eq!(max, 0);
        assert!(pads.is_empty());
    }

    #[test]
    fn cohort_padding_uniform_needs_none() {
        let (max, pads) = cohort_padding(&[4, 4, 4]);
        assert_eq!(max, 4);
        assert!(pads.iter().all(|&p| p == 0));
    }

    #[test]
    fn aligned_line_layout() {
        let mut buf = Vec::new();
        write_aligned_line(&mut buf, b"$42", 6);
        assert_eq!(buf, b"$42   \n");
    }

    #[test]
    fn padded_output_equals_unpadded_modulo_padding() {
        let mut padded = Vec::new();
        write_aligned_line(&mut padded, b"balance: 7", 16);
        write_aligned_line(&mut padded, b"<hr>", 4);
        let plain = b"balance: 7\n<hr>\n";
        assert!(eq_modulo_padding(&padded, plain));
        assert!(!eq_modulo_padding(&padded, b"balance: 8\n<hr>\n"));
    }

    #[test]
    fn pow2_rounding() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(4096), 4096);
        assert_eq!(next_pow2(4097), 8192);
        assert_eq!(next_pow2(17 * 1024), 32 * 1024);
    }
}
