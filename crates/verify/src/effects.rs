//! Kernel memory-effect summaries: per-space read/write/atomic footprints.
//!
//! This is the analyzer's answer to "what memory does this kernel touch?",
//! computed once per (program, launch environment) and consumed by the
//! HyperQ cohort scheduler (`rhythm-banking`), the `kernel_lint` tool, and
//! the runtime footprint sanitizer in the plan executor.
//!
//! # The region domain
//!
//! Every global/shared/local/const access is abstracted as a symbolic
//! strided [`Region`]: the address pattern `lo + lane·lane_stride +
//! gid·gid_stride`, materialized over the launch's lane/gid ranges as the
//! byte interval `[lo, hi)`. Regions come in two precision tiers:
//!
//! * **Exact** — the address decomposes entirely into known constants and
//!   lane/gid-affine terms (over the [`crate::dataflow`] domain), so
//!   `[lo, hi)` is the exact closure of the pattern.
//! * **Claimed** — the decomposition contains a data-dependent additive
//!   term (a loaded value, a hash, a cursor position). Unsigned terms are
//!   nonnegative, so the *lower* bound (sum of the known terms' minima) is
//!   sound modulo u32 wrap; the *upper* bound is a **claim**: the end of
//!   the enclosing declared region from the caller's [`RegionMap`] (e.g.
//!   "cursor writes stay inside the response buffer"), or the space extent
//!   when no declared region contains `lo`. Claims are exactly what the
//!   runtime footprint sanitizer discharges: every executed access is
//!   checked against the claimed footprint, so an escape is a loud
//!   soundness failure rather than a silently wrong schedule.
//!
//! When an access has neither a decomposable address nor an anchor nor a
//! known extent, the whole (space, kind) footprint collapses to an
//! explicit ⊤ ([`SpaceFootprint::Top`]): the kernel may touch anything,
//! and every disjointness query involving it conservatively fails.
//!
//! # Interference
//!
//! [`interferes`] is the scheduler-facing oracle: two kernels may conflict
//! iff, in some space, a write/atomic footprint of one overlaps a
//! read/write/atomic footprint of the other (write-write and read-write
//! hazards). Overlap is decided on the materialized byte intervals —
//! deliberately stride-insensitive, so interleaved-but-disjoint stride
//! patterns still count as conflicting. Imprecision only ever *serializes*
//! more, never less.

use std::sync::Arc;

use rhythm_simt::exec::FootprintSpec;
use rhythm_simt::ir::{BinOp, MemSpace, Op, Program, Reg, Width};

pub use rhythm_simt::exec::AccessKind;

use crate::dataflow::{Analysis, Shape, Sym};
use crate::rules::rule_id;
use crate::{Diagnostic, LaunchSpec, Severity};

/// Strides (and the decomposition chain generally) are only trusted below
/// this bound: a coefficient of 2³¹ or more is indistinguishable from a
/// negative stride under wrapping u32 arithmetic, so such terms are
/// treated as data-dependent instead.
const MAX_COEFF: u32 = 1 << 31;

/// Recursion bound for the address-decomposition walk; chains deeper than
/// this degrade to a data-dependent leaf.
const MAX_DEPTH: u32 = 64;

/// One symbolic strided region of a footprint: the access pattern
/// `lo + lane·lane_stride + gid·gid_stride` (each symbol ranging over the
/// launch per [`Analysis::sym_range`]), materialized as the byte interval
/// `[lo, hi)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Region {
    /// Lowest byte the pattern can touch. For claimed regions this is the
    /// sum of the known terms' minima (sound modulo u32 wrap).
    pub lo: u64,
    /// One past the highest byte. For exact regions, the closure of the
    /// pattern; for claimed regions, the end of the enclosing declared
    /// region (or the space extent).
    pub hi: u64,
    /// Known per-lane stride of the pattern (0 when lane-invariant).
    pub lane_stride: u32,
    /// Known per-global-id stride of the pattern (0 when gid-invariant).
    pub gid_stride: u32,
    /// Bytes per access (1 or 4).
    pub width: u32,
    /// `true` when `[lo, hi)` is exactly the closure of the pattern;
    /// `false` when `hi` is a claim discharged by the runtime sanitizer.
    pub exact: bool,
}

impl Region {
    /// Does this region's interval overlap `[lo, hi)`?
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.lo < hi && lo < self.hi
    }
}

/// The footprint of one (memory space, access kind) pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpaceFootprint {
    /// Unknown: the kernel may touch any byte of the space.
    Top,
    /// The union of these regions (empty = provably no such accesses).
    Regions(Vec<Region>),
}

impl Default for SpaceFootprint {
    fn default() -> Self {
        SpaceFootprint::Regions(Vec::new())
    }
}

impl SpaceFootprint {
    /// Is this the ⊤ fallback?
    pub fn is_top(&self) -> bool {
        matches!(self, SpaceFootprint::Top)
    }

    /// Provably no accesses of this kind in this space?
    pub fn is_empty(&self) -> bool {
        matches!(self, SpaceFootprint::Regions(r) if r.is_empty())
    }

    /// Any region whose `[lo, hi)` is a claim rather than an exact
    /// closure?
    pub fn has_claimed(&self) -> bool {
        match self {
            SpaceFootprint::Top => false,
            SpaceFootprint::Regions(r) => r.iter().any(|g| !g.exact),
        }
    }

    /// The regions, when not ⊤.
    pub fn regions(&self) -> Option<&[Region]> {
        match self {
            SpaceFootprint::Top => None,
            SpaceFootprint::Regions(r) => Some(r),
        }
    }

    /// May this footprint touch a byte in `[lo, hi)`? ⊤ touches
    /// everything (non-empty); an empty range is never touched.
    pub fn overlaps_range(&self, lo: u64, hi: u64) -> bool {
        if hi <= lo {
            return false;
        }
        match self {
            SpaceFootprint::Top => true,
            SpaceFootprint::Regions(r) => r.iter().any(|g| g.overlaps(lo, hi)),
        }
    }

    /// The materialized byte intervals, or `None` for ⊤. Not normalized;
    /// [`FootprintSpec::new`] normalizes on lowering.
    pub fn intervals(&self) -> Option<Vec<(u64, u64)>> {
        self.regions()
            .map(|r| r.iter().map(|g| (g.lo, g.hi)).collect())
    }

    fn add(&mut self, region: Region) {
        if let SpaceFootprint::Regions(r) = self {
            if !r.contains(&region) {
                r.push(region);
            }
        }
    }

    fn join(&mut self, other: &SpaceFootprint) {
        match other {
            SpaceFootprint::Top => *self = SpaceFootprint::Top,
            SpaceFootprint::Regions(rs) => {
                for g in rs {
                    self.add(g.clone());
                }
            }
        }
    }
}

/// Read/write/atomic footprints of one memory space.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SpaceEffects {
    /// Bytes the kernel may load.
    pub reads: SpaceFootprint,
    /// Bytes the kernel may store.
    pub writes: SpaceFootprint,
    /// Bytes the kernel may read-modify-write atomically.
    pub atomics: SpaceFootprint,
}

impl SpaceEffects {
    /// Footprint of one access kind.
    pub fn of(&self, kind: AccessKind) -> &SpaceFootprint {
        match kind {
            AccessKind::Read => &self.reads,
            AccessKind::Write => &self.writes,
            AccessKind::Atomic => &self.atomics,
        }
    }

    fn of_mut(&mut self, kind: AccessKind) -> &mut SpaceFootprint {
        match kind {
            AccessKind::Read => &mut self.reads,
            AccessKind::Write => &mut self.writes,
            AccessKind::Atomic => &mut self.atomics,
        }
    }

    /// May the kernel mutate (write or atomically update) a byte in
    /// `[lo, hi)` of this space?
    pub fn mutates_range(&self, lo: u64, hi: u64) -> bool {
        self.writes.overlaps_range(lo, hi) || self.atomics.overlaps_range(lo, hi)
    }
}

/// The full effect summary of one kernel under one launch environment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KernelEffects {
    /// Name of the summarized program.
    pub program: String,
    spaces: [SpaceEffects; 4],
}

fn space_index(space: MemSpace) -> usize {
    match space {
        MemSpace::Global => 0,
        MemSpace::Shared => 1,
        MemSpace::Const => 2,
        MemSpace::Local => 3,
    }
}

impl KernelEffects {
    /// The footprints of one memory space.
    pub fn space(&self, space: MemSpace) -> &SpaceEffects {
        &self.spaces[space_index(space)]
    }

    /// Is any (space, kind) footprint the ⊤ fallback?
    pub fn is_top_anywhere(&self) -> bool {
        self.spaces
            .iter()
            .any(|s| s.reads.is_top() || s.writes.is_top() || s.atomics.is_top())
    }

    /// Does any footprint carry a sanitizer-discharged claim?
    pub fn has_claimed(&self) -> bool {
        self.spaces
            .iter()
            .any(|s| s.reads.has_claimed() || s.writes.has_claimed() || s.atomics.has_claimed())
    }

    /// May the kernel mutate a byte in `[lo, hi)` of `space`? This is the
    /// session-array query the HyperQ scheduler asks.
    pub fn mutates(&self, space: MemSpace, lo: u64, hi: u64) -> bool {
        self.space(space).mutates_range(lo, hi)
    }

    /// Join `other` into this summary (union of regions, ⊤ absorbing).
    /// Used to merge summaries of one kernel across several launch
    /// environments.
    pub fn join(&mut self, other: &KernelEffects) {
        for (mine, theirs) in self.spaces.iter_mut().zip(&other.spaces) {
            mine.reads.join(&theirs.reads);
            mine.writes.join(&theirs.writes);
            mine.atomics.join(&theirs.atomics);
        }
    }

    /// Lower the **global-space** summary to the executor's claimed
    /// footprint for the runtime sanitizer. ⊤ footprints lower to
    /// unrestricted claims (the sanitizer cannot check what the analyzer
    /// could not bound).
    pub fn footprint_spec(&self) -> FootprintSpec {
        let g = self.space(MemSpace::Global);
        FootprintSpec::new(
            g.reads.intervals(),
            g.writes.intervals(),
            g.atomics.intervals(),
        )
    }
}

/// True when the two kernels may conflict: in some memory space, a
/// write/atomic footprint of one overlaps a read/write/atomic footprint
/// of the other. Disjoint (non-interfering) kernels may run concurrently
/// in any order with bit-identical results.
pub fn interferes(a: &KernelEffects, b: &KernelEffects) -> bool {
    fn fp_overlap(x: &SpaceFootprint, y: &SpaceFootprint) -> bool {
        if x.is_empty() || y.is_empty() {
            return false;
        }
        match (x.regions(), y.regions()) {
            (Some(xr), Some(yr)) => xr.iter().any(|g| yr.iter().any(|h| g.overlaps(h.lo, h.hi))),
            // At least one side is ⊤ and neither is empty.
            _ => true,
        }
    }
    for space in MemSpace::ALL {
        let (sa, sb) = (a.space(space), b.space(space));
        for (wr, rd) in [(sa, sb), (sb, sa)] {
            for wkind in [AccessKind::Write, AccessKind::Atomic] {
                let w = wr.of(wkind);
                for rkind in [AccessKind::Read, AccessKind::Write, AccessKind::Atomic] {
                    if fp_overlap(w, rd.of(rkind)) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Declared memory regions of a launch's **global** space: disjoint
/// `[lo, hi)` byte spans (e.g. the banking cohort layout's buffers) used
/// to anchor the upper bound of data-dependent accesses. An empty map
/// disables anchoring, so data-dependent addresses fall back to the space
/// extent (or ⊤).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RegionMap {
    spans: Vec<(u64, u64)>,
}

impl RegionMap {
    /// Build a map from `[lo, hi)` spans; empty spans are dropped and the
    /// rest sorted. Spans are expected to be disjoint (a declared layout).
    pub fn new(mut spans: Vec<(u64, u64)>) -> Self {
        spans.retain(|&(lo, hi)| hi > lo);
        spans.sort_unstable();
        RegionMap { spans }
    }

    /// The declared span containing `addr`, if any.
    pub fn enclosing(&self, addr: u64) -> Option<(u64, u64)> {
        let i = self.spans.partition_point(|&(lo, _)| lo <= addr);
        (i > 0 && self.spans[i - 1].1 > addr).then(|| self.spans[i - 1])
    }

    /// The declared spans, sorted.
    pub fn spans(&self) -> &[(u64, u64)] {
        &self.spans
    }

    /// Stable hash of the spans, for cache keys.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.spans.hash(&mut h);
        h.finish()
    }
}

/// An address decomposed into `base + lane·lane + gid·gid (+ unknown ≥ 0)`.
/// All components are exact sums of the known terms; `unknown` records
/// whether any data-dependent (but still nonnegative) term was dropped.
#[derive(Copy, Clone, Default)]
struct Parts {
    base: u64,
    lane: u64,
    gid: u64,
    unknown: bool,
}

impl Parts {
    const UNKNOWN: Parts = Parts {
        base: 0,
        lane: 0,
        gid: 0,
        unknown: true,
    };

    fn add(self, o: Parts) -> Parts {
        Parts {
            base: self.base.saturating_add(o.base),
            lane: self.lane.saturating_add(o.lane),
            gid: self.gid.saturating_add(o.gid),
            unknown: self.unknown || o.unknown,
        }
    }

    fn scale(self, c: u32) -> Parts {
        if c == 0 {
            // 0·(known + unknown) = 0 exactly, even for unknown terms.
            return Parts::default();
        }
        Parts {
            base: self.base.saturating_mul(c as u64),
            lane: self.lane.saturating_mul(c as u64),
            gid: self.gid.saturating_mul(c as u64),
            unknown: self.unknown,
        }
    }
}

/// Unique-definition map: for each register, its single defining op, or
/// `None` when it has zero or several defs (then only the joined abstract
/// value is trusted).
fn unique_defs(program: &Program, reachable: &[bool]) -> Vec<Option<Op>> {
    #[derive(Clone, PartialEq)]
    enum D {
        None,
        One(Op),
        Many,
    }
    let mut defs = vec![D::None; program.num_regs() as usize];
    for (b, block) in program.blocks().iter().enumerate() {
        if !reachable.get(b).copied().unwrap_or(false) {
            continue;
        }
        for op in &block.ops {
            if let Some(dst) = op.dst() {
                let slot = &mut defs[dst.0 as usize];
                *slot = match slot {
                    D::None => D::One(op.clone()),
                    _ => D::Many,
                };
            }
        }
    }
    defs.into_iter()
        .map(|d| match d {
            D::One(op) => Some(op),
            _ => None,
        })
        .collect()
}

struct Inference<'a> {
    an: &'a Analysis,
    defs: &'a [Option<Op>],
    spec: &'a LaunchSpec,
}

impl Inference<'_> {
    /// Decompose a register's value into [`Parts`]. Sound modulo u32
    /// wrap: the runtime value is `base + lane·l + gid·g + u` for some
    /// nonnegative `u` (zero unless `unknown`), as long as no
    /// intermediate u32 arithmetic wrapped. The wrap caveat is exactly
    /// what the bounds rules and the runtime sanitizer cover.
    fn resolve(&self, reg: Reg, depth: u32) -> Parts {
        // Abstract-value fast path: a fully known shape needs no walk,
        // and is also the only sound answer for multi-def registers.
        let abs = self.an.abs(reg);
        match abs.shape {
            Shape::Const(c) => {
                return Parts {
                    base: c as u64,
                    ..Parts::default()
                }
            }
            Shape::Affine {
                sym,
                coeff,
                base: Some(b),
            } if coeff < MAX_COEFF => {
                let mut p = Parts {
                    base: b as u64,
                    ..Parts::default()
                };
                match sym {
                    Sym::Lane => p.lane = coeff as u64,
                    Sym::Gid => p.gid = coeff as u64,
                }
                return p;
            }
            _ => {}
        }
        if depth >= MAX_DEPTH {
            return Parts::UNKNOWN;
        }
        let Some(op) = self.defs.get(reg.0 as usize).and_then(|d| d.as_ref()) else {
            // Zero or several defs: keep the joined stride when the shape
            // is affine with unknown base (min of the unknown uniform
            // base is 0), else a plain unknown leaf.
            return match abs.shape {
                Shape::Affine { sym, coeff, .. } if coeff < MAX_COEFF => {
                    let mut p = Parts::UNKNOWN;
                    match sym {
                        Sym::Lane => p.lane = coeff as u64,
                        Sym::Gid => p.gid = coeff as u64,
                    }
                    p
                }
                _ => Parts::UNKNOWN,
            };
        };
        match *op {
            Op::Mov { src, .. } => self.resolve(src, depth + 1),
            Op::Bin { op, a, b, .. } => {
                let konst = |r: Reg| match self.an.abs(r).shape {
                    Shape::Const(c) => Some(c),
                    _ => None,
                };
                match op {
                    BinOp::Add => self.resolve(a, depth + 1).add(self.resolve(b, depth + 1)),
                    BinOp::Mul => match (konst(a), konst(b)) {
                        (Some(c), _) if c < MAX_COEFF => self.resolve(b, depth + 1).scale(c),
                        (_, Some(c)) if c < MAX_COEFF => self.resolve(a, depth + 1).scale(c),
                        _ => Parts::UNKNOWN,
                    },
                    BinOp::Shl => match konst(b) {
                        Some(k) => {
                            let c = 1u32.wrapping_shl(k);
                            if c != 0 && c < MAX_COEFF {
                                self.resolve(a, depth + 1).scale(c)
                            } else {
                                Parts::UNKNOWN
                            }
                        }
                        None => Parts::UNKNOWN,
                    },
                    BinOp::Sub => {
                        // Only a provably in-range constant subtrahend
                        // from an exact minuend keeps nonnegativity.
                        match konst(b) {
                            Some(c) => {
                                let p = self.resolve(a, depth + 1);
                                if !p.unknown && p.base >= c as u64 {
                                    Parts {
                                        base: p.base - c as u64,
                                        ..p
                                    }
                                } else {
                                    Parts::UNKNOWN
                                }
                            }
                            None => Parts::UNKNOWN,
                        }
                    }
                    _ => Parts::UNKNOWN,
                }
            }
            // Everything else (loads, atomics, Param with unknown vector,
            // reductions) is a data-dependent-but-unsigned leaf.
            _ => Parts::UNKNOWN,
        }
    }

    /// Turn one access into a region, or `None` for the ⊤ fallback.
    fn access_region(
        &self,
        space: MemSpace,
        addr: Reg,
        offset: u32,
        width: Width,
        regions: &RegionMap,
    ) -> Option<Region> {
        let p = self.resolve(addr, 0);
        let lanes = self.spec.lanes;
        let lane_n = Analysis::sym_range(Sym::Lane, lanes) as u64;
        let gid_n = Analysis::sym_range(Sym::Gid, lanes) as u64;
        let lo = p.base.saturating_add(offset as u64);
        let span = p
            .lane
            .saturating_mul(lane_n - 1)
            .saturating_add(p.gid.saturating_mul(gid_n - 1));
        let wb = width.bytes() as u64;
        let hi;
        let exact;
        if !p.unknown {
            hi = lo.saturating_add(span).saturating_add(wb);
            exact = true;
        } else if space == MemSpace::Global {
            if let Some((_, end)) = regions.enclosing(lo) {
                hi = end;
                exact = false;
            } else if let Some(extent) = self.spec.extent(space) {
                hi = extent;
                exact = false;
            } else {
                return None;
            }
        } else if let Some(extent) = self.spec.extent(space) {
            hi = extent;
            exact = false;
        } else {
            return None;
        }
        Some(Region {
            lo,
            hi,
            lane_stride: p.lane.min(u32::MAX as u64) as u32,
            gid_stride: p.gid.min(u32::MAX as u64) as u32,
            width: width.bytes(),
            exact,
        })
    }
}

/// Walk every reachable memory access of `program`, yielding
/// `(block, op_index, space, kind, width, region)` with `region == None`
/// for the ⊤ fallback. Shared by [`infer_effects`] and [`effect_lints`].
fn walk_accesses(
    program: &Program,
    spec: &LaunchSpec,
    regions: &RegionMap,
    mut f: impl FnMut(u32, usize, MemSpace, AccessKind, Width, Option<Region>),
) {
    let an = Analysis::run(program, spec);
    let defs = unique_defs(program, &an.reachable);
    let inf = Inference {
        an: &an,
        defs: &defs,
        spec,
    };
    for (b, block) in program.blocks().iter().enumerate() {
        if !an.reachable.get(b).copied().unwrap_or(false) {
            continue;
        }
        for (i, op) in block.ops.iter().enumerate() {
            let (space, kind, addr, offset, width) = match *op {
                Op::Ld {
                    width,
                    space,
                    addr,
                    offset,
                    ..
                } => (space, AccessKind::Read, addr, offset, width),
                Op::St {
                    width,
                    space,
                    addr,
                    offset,
                    ..
                } => (space, AccessKind::Write, addr, offset, width),
                Op::AtomicAdd {
                    space,
                    addr,
                    offset,
                    ..
                } => (space, AccessKind::Atomic, addr, offset, Width::Word),
                _ => continue,
            };
            let region = inf.access_region(space, addr, offset, width, regions);
            f(b as u32, i, space, kind, width, region);
        }
    }
}

/// Infer the effect summary of `program` under `spec`, anchoring
/// data-dependent global addresses to the declared `regions`.
pub fn infer_effects(program: &Program, spec: &LaunchSpec, regions: &RegionMap) -> KernelEffects {
    let mut out = KernelEffects {
        program: program.name().to_string(),
        spaces: Default::default(),
    };
    walk_accesses(program, spec, regions, |_, _, space, kind, _, region| {
        let fp = out.spaces[space_index(space)].of_mut(kind);
        match region {
            Some(r) => fp.add(r),
            None => *fp = SpaceFootprint::Top,
        }
    });
    out
}

/// Summary-powered lints: a warning for every access that degrades a
/// footprint to ⊤, and an error for every *exact* region that provably
/// exceeds the declared space extent.
pub fn effect_lints(program: &Program, spec: &LaunchSpec, regions: &RegionMap) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    walk_accesses(
        program,
        spec,
        regions,
        |b, i, space, kind, _, region| match region {
            None => out.push(Diagnostic {
                severity: Severity::Warning,
                rule: rule_id::EFFECTS_TOP,
                block: Some(b),
                op_index: Some(i),
                message: format!(
                    "{kind} address in {space:?} is data-dependent with no enclosing \
                     declared region and no known extent; footprint degrades to ⊤"
                ),
            }),
            Some(r) if r.exact => {
                if let Some(extent) = spec.extent(space) {
                    if r.hi > extent {
                        out.push(Diagnostic {
                            severity: Severity::Error,
                            rule: rule_id::EFFECTS_OOB,
                            block: Some(b),
                            op_index: Some(i),
                            message: format!(
                                "inferred {kind} region [{}, {}) exceeds the {space:?} \
                                 extent of {extent} bytes",
                                r.lo, r.hi
                            ),
                        });
                    }
                }
            }
            Some(_) => {}
        },
    );
    out
}

/// A cached effect summary plus its lowered sanitizer spec, as returned
/// by [`crate::Verifier::effects`].
#[derive(Debug)]
pub struct CachedEffects {
    /// The inferred summary.
    pub effects: KernelEffects,
    /// [`KernelEffects::footprint_spec`], lowered once and shared.
    pub footprint: Arc<FootprintSpec>,
}

impl CachedEffects {
    /// Build from a freshly inferred summary.
    pub fn new(effects: KernelEffects) -> Self {
        let footprint = Arc::new(effects.footprint_spec());
        CachedEffects { effects, footprint }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_simt::ir::ProgramBuilder;

    fn spec(lanes: u32, global: u64) -> LaunchSpec {
        LaunchSpec {
            global_bytes: Some(global),
            ..LaunchSpec::lanes(lanes)
        }
    }

    #[test]
    fn exact_strided_store() {
        let mut b = ProgramBuilder::new("strided");
        let gid = b.global_id();
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, gid, four);
        let v = b.imm(7);
        b.st_global_word(addr, 16, v);
        b.halt();
        let p = b.build().unwrap();
        let fx = infer_effects(&p, &spec(8, 4096), &RegionMap::default());
        let w = fx.space(MemSpace::Global).writes.regions().unwrap();
        assert_eq!(
            w,
            &[Region {
                lo: 16,
                hi: 16 + 7 * 4 + 4,
                lane_stride: 0,
                gid_stride: 4,
                width: 4,
                exact: true,
            }]
        );
        assert!(!fx.is_top_anywhere());
    }

    #[test]
    fn data_dependent_store_anchors_or_tops() {
        let mut b = ProgramBuilder::new("indirect");
        let gid = b.global_id();
        let four = b.imm(4);
        let slot = b.bin(BinOp::Mul, gid, four);
        let v = b.ld_global_word(slot, 0);
        let one = b.imm(1);
        b.st_global_word(v, 0, one);
        b.halt();
        let p = b.build().unwrap();

        // No extent, no regions: ⊤.
        let fx = infer_effects(&p, &LaunchSpec::lanes(4), &RegionMap::default());
        assert!(fx.space(MemSpace::Global).writes.is_top());

        // Extent known: claimed region over the whole space.
        let fx = infer_effects(&p, &spec(4, 1 << 20), &RegionMap::default());
        let w = fx.space(MemSpace::Global).writes.regions().unwrap();
        assert_eq!((w[0].lo, w[0].hi, w[0].exact), (0, 1 << 20, false));

        // Declared region containing the anchor: claimed within it.
        let fx = infer_effects(&p, &spec(4, 1 << 20), &RegionMap::new(vec![(0, 256)]));
        let w = fx.space(MemSpace::Global).writes.regions().unwrap();
        assert_eq!((w[0].lo, w[0].hi, w[0].exact), (0, 256, false));
    }

    #[test]
    fn interference_is_interval_based() {
        let writer = |name: &str, offset: u32| {
            let mut b = ProgramBuilder::new(name);
            let gid = b.global_id();
            let four = b.imm(4);
            let scaled = b.bin(BinOp::Mul, gid, four);
            let v = b.imm(1);
            b.st_global_word(scaled, offset, v);
            b.halt();
            b.build().unwrap()
        };
        let s = spec(8, 4096);
        let rm = RegionMap::default();
        let a = infer_effects(&writer("a", 0), &s, &rm);
        let b_ = infer_effects(&writer("b", 64), &s, &rm);
        let c = infer_effects(&writer("c", 4), &s, &rm);
        assert!(!interferes(&a, &b_)); // [0,32) vs [64,96)
        assert!(interferes(&a, &c)); // [0,32) vs [4,36): intervals overlap
        assert!(interferes(&a, &a));
    }
}
