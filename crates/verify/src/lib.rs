//! `rhythm-verify` — pre-launch static analysis for Rhythm SIMT kernels.
//!
//! Rhythm's throughput story (paper §3, §6.4) depends on cohort kernels
//! staying *convergent* and *coalesced*; its correctness story depends on
//! them staying inside their buffers and free of cross-lane races. This
//! crate is the correctness gate every kernel passes before it reaches
//! the device: a dataflow/CFG analyzer over [`rhythm_simt::ir::Program`]
//! producing structured [`Diagnostic`]s across five rule families —
//! divergence taint, race detection, bounds checking, coalescing lints,
//! and hygiene (see [`rules::rule_id`] for the catalogue).
//!
//! Three integration layers:
//!
//! * [`BuildVerified::build_verified`] — builder-level: build *and* lint
//!   in one step, failing on `Error`-severity findings.
//! * [`Verifier`] — a [`LaunchGate`] for [`rhythm_simt::gpu::Gpu`]: every
//!   launch is checked against its concrete launch environment (lane
//!   count, parameter vector, memory extents) and rejected with
//!   [`rhythm_simt::ExecError::Rejected`] before any lane runs. Results
//!   are fingerprint-cached so steady-state launches pay one hash lookup.
//! * the `kernel_lint` binary (in `rhythm-bench`) — lints every
//!   registered banking kernel and reports a human table or JSON.
//!
//! # Example
//!
//! ```
//! use rhythm_simt::ir::ProgramBuilder;
//! use rhythm_verify::{verify_program, LaunchSpec, Severity};
//!
//! // A kernel that stores lane-distinct values through one address.
//! let mut b = ProgramBuilder::new("lost_update");
//! let lane = b.lane_id();
//! let addr = b.imm(0);
//! b.st_global_word(addr, 0, lane);
//! b.halt();
//! let p = b.build().unwrap();
//!
//! let report = verify_program(&p, &LaunchSpec::lanes(32));
//! assert!(report.errors().any(|d| d.rule == "race-uniform-store"));
//! assert_eq!(report.worst(), Some(Severity::Error));
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod dataflow;
pub mod effects;
pub mod rules;

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

use rhythm_simt::exec::{GateRejection, LaunchConfig};
use rhythm_simt::gpu::LaunchGate;
use rhythm_simt::ir::{BuildError, MemSpace, Op, Program, ProgramBuilder};
use rhythm_simt::mem::{ConstPool, DeviceMemory};

use dataflow::Analysis;

/// How severe a finding is. Ordered: `Info < Warning < Error`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Throughput smell or redundancy; no action required.
    Info,
    /// Likely hazard; worth fixing, does not block launches.
    Warning,
    /// Proven defect; gated launches are rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// Stable rule identifier (see [`rules::rule_id`]).
    pub rule: &'static str,
    /// Basic block containing the finding (`None` for program-level
    /// findings).
    pub block: Option<u32>,
    /// Op index within the block (`None` for block-level findings; the
    /// terminator is addressed as `ops.len()`).
    pub op_index: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}]", self.severity, self.rule)?;
        if let Some(b) = self.block {
            write!(f, " bb{b}")?;
            if let Some(i) = self.op_index {
                write!(f, ".{i}")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// All findings for one program, sorted most severe first.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Name of the analyzed program.
    pub program: String,
    /// Findings, sorted by descending severity (stable within a level).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// `Error`-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Count of findings at a severity level.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The most severe finding level, or `None` for a clean program.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// True when the report contains no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when the report contains no `Error` findings (warnings and
    /// infos allowed) — the launch-gate admission criterion.
    pub fn is_launchable(&self) -> bool {
        self.worst() != Some(Severity::Error)
    }

    /// Convert the first (most severe) error into a structured launch
    /// rejection, if any.
    pub fn rejection(&self) -> Option<GateRejection> {
        self.errors().next().map(|d| GateRejection {
            rule: d.rule.to_string(),
            program: self.program.clone(),
            block: d.block,
            op_index: d.op_index,
            message: d.message.clone(),
        })
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "{}: clean", self.program);
        }
        writeln!(f, "{}:", self.program)?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// The launch environment a program is verified against. Unknown extents
/// (`None`) disable the corresponding bounds rules; an unknown parameter
/// vector disables parameter folding and the missing-parameter rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LaunchSpec {
    /// Lanes in the launch (drives lane/global-id value ranges and the
    /// race rules).
    pub lanes: u32,
    /// The launch parameter vector, when known.
    pub params: Option<Vec<u32>>,
    /// Global (device DRAM) extent in bytes, when known.
    pub global_bytes: Option<u64>,
    /// Per-warp shared-memory extent in bytes, when known.
    pub shared_bytes: Option<u64>,
    /// Per-lane local-memory extent in bytes, when known.
    pub local_bytes: Option<u64>,
    /// Constant-pool extent in bytes, when known.
    pub const_bytes: Option<u64>,
}

impl Default for LaunchSpec {
    fn default() -> Self {
        LaunchSpec::lanes(rhythm_simt::WARP_SIZE)
    }
}

impl LaunchSpec {
    /// A spec with the given lane count and everything else unknown.
    pub fn lanes(lanes: u32) -> Self {
        LaunchSpec {
            lanes,
            params: None,
            global_bytes: None,
            shared_bytes: None,
            local_bytes: None,
            const_bytes: None,
        }
    }

    /// The spec describing a concrete launch.
    pub fn from_launch(cfg: &LaunchConfig, mem: &DeviceMemory, pool: &ConstPool) -> Self {
        LaunchSpec {
            lanes: cfg.lanes,
            params: Some(cfg.params.clone()),
            global_bytes: Some(mem.len() as u64),
            shared_bytes: Some(cfg.shared_bytes as u64),
            local_bytes: Some(cfg.local_bytes as u64),
            const_bytes: Some(pool.len() as u64),
        }
    }

    /// Declared extent of a memory space, if known.
    pub fn extent(&self, space: MemSpace) -> Option<u64> {
        match space {
            MemSpace::Global => self.global_bytes,
            MemSpace::Shared => self.shared_bytes,
            MemSpace::Local => self.local_bytes,
            MemSpace::Const => self.const_bytes,
        }
    }

    fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.lanes.hash(&mut h);
        self.params.hash(&mut h);
        self.global_bytes.hash(&mut h);
        self.shared_bytes.hash(&mut h);
        self.local_bytes.hash(&mut h);
        self.const_bytes.hash(&mut h);
        h.finish()
    }
}

/// Run every rule family over `program` for the given launch
/// environment.
pub fn verify_program(program: &Program, spec: &LaunchSpec) -> Report {
    let an = Analysis::run(program, spec);
    let mut diagnostics = Vec::new();
    rules::divergence(program, &an, &mut diagnostics);
    rules::races(program, spec, &an, &mut diagnostics);
    rules::bounds(program, spec, &an, &mut diagnostics);
    rules::coalescing(program, spec, &an, &mut diagnostics);
    rules::hygiene(program, &an, &mut diagnostics);
    diagnostics.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.block.cmp(&b.block))
            .then(a.op_index.cmp(&b.op_index))
    });
    Report {
        program: program.name().to_string(),
        diagnostics,
    }
}

/// Maximum sub-warp packing width the analyzer will endorse for
/// `program` under `spec`: `4` when packing is provably invisible, `1`
/// otherwise.
///
/// Packed execution (see `rhythm_simt::exec::LaunchConfig::pack`) runs up
/// to four warps of independent requests in fused lockstep. Its
/// correctness contract is the same cross-warp independence that parallel
/// warp workers already rely on, so the analyzer endorses full packing
/// exactly when nothing in the program can make one warp's requests
/// observe another's interleaving:
///
/// * **no atomics** — `AtomicAdd` return values are order-dependent
///   across warps, and packing (like worker scheduling) changes that
///   order; the executor's own static profile
///   (`ExecPlan::pack_max`) enforces this too, this check just keeps the
///   analyzer's answer self-contained; and
/// * **no cross-lane write hazards** — any `race-uniform-store` or
///   `race-rw-conflict` diagnostic (at any severity) means lanes of
///   *one cohort* already contend on addresses, and interleaving packed
///   sub-groups through the same block could widen that contention
///   window across warps. `race-uniform-store-uniform-value` findings
///   (all lanes store the same value — a benign broadcast) do not block
///   packing: last-write-wins is value-identical in every order.
///
/// The answer is monotone-safe: `1` is always correct, `4` is returned
/// only when bit-identity is guaranteed for race-free kernels.
pub fn pack_width(program: &Program, spec: &LaunchSpec) -> u32 {
    let has_atomic = program
        .blocks()
        .iter()
        .any(|b| b.ops.iter().any(|op| matches!(op, Op::AtomicAdd { .. })));
    if has_atomic {
        return 1;
    }
    let report = verify_program(program, spec);
    let blocked = report.diagnostics.iter().any(|d| {
        d.rule == rules::rule_id::RACE_UNIFORM_STORE || d.rule == rules::rule_id::RACE_RW_CONFLICT
    });
    if blocked {
        1
    } else {
        4
    }
}

/// Bound on the [`pack_width_cached`] memo table; mirrors
/// [`VERIFIER_CACHE_CAP`].
const PACK_CACHE_CAP: usize = 8192;

/// [`pack_width`] memoized by (program fingerprint, spec fingerprint), so
/// steady-state cohort launches pay one hash lookup instead of a full
/// analysis pass per kernel build.
pub fn pack_width_cached(program: &Program, spec: &LaunchSpec) -> u32 {
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static CACHE: OnceLock<Mutex<HashMap<(u64, u64), u32>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (program.fingerprint(), spec.fingerprint());
    if let Some(&w) = cache.lock().expect("pack cache poisoned").get(&key) {
        return w;
    }
    let w = pack_width(program, spec);
    let mut map = cache.lock().expect("pack cache poisoned");
    if map.len() >= PACK_CACHE_CAP {
        map.clear();
    }
    map.insert(key, w);
    w
}

/// Failure from [`BuildVerified::build_verified`].
#[derive(Clone, Debug)]
pub enum BuildVerifyError {
    /// The builder itself failed (unterminated block, validation error).
    Build(BuildError),
    /// The program built but the analyzer found `Error`-severity
    /// findings; the full report is attached.
    Rejected(Report),
}

impl fmt::Display for BuildVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildVerifyError::Build(e) => write!(f, "build failed: {e}"),
            BuildVerifyError::Rejected(r) => {
                write!(
                    f,
                    "program rejected by static analysis ({} error(s)): {}",
                    r.count(Severity::Error),
                    r.errors()
                        .next()
                        .map(|d| d.message.as_str())
                        .unwrap_or("<none>")
                )
            }
        }
    }
}

impl std::error::Error for BuildVerifyError {}

/// Extension trait adding a verified build path to
/// [`rhythm_simt::ir::ProgramBuilder`].
pub trait BuildVerified {
    /// Build the program, then verify it against `spec`; `Error`-severity
    /// findings reject the build.
    ///
    /// # Errors
    ///
    /// [`BuildVerifyError::Build`] when construction fails,
    /// [`BuildVerifyError::Rejected`] when the analyzer finds errors.
    fn build_verified(self, spec: &LaunchSpec) -> Result<Program, BuildVerifyError>;
}

impl BuildVerified for ProgramBuilder {
    fn build_verified(self, spec: &LaunchSpec) -> Result<Program, BuildVerifyError> {
        let program = self.build().map_err(BuildVerifyError::Build)?;
        let report = verify_program(&program, spec);
        if report.is_launchable() {
            Ok(program)
        } else {
            Err(BuildVerifyError::Rejected(report))
        }
    }
}

/// Bound on the verifier's admission cache; far above any realistic
/// distinct (kernel, launch-shape) population, it only guards against
/// pathological churn.
const VERIFIER_CACHE_CAP: usize = 8192;

/// A caching [`LaunchGate`]: verifies each (program, launch environment)
/// pair once and admits repeats with a single hash lookup, so gated
/// steady-state serving pays no measurable analysis cost.
#[derive(Debug, Default)]
pub struct Verifier {
    admitted: Mutex<HashSet<(u64, u64)>>,
    effects_cache: Mutex<HashMap<(u64, u64, u64), Arc<effects::CachedEffects>>>,
}

impl Verifier {
    /// A fresh verifier with an empty admission cache.
    pub fn new() -> Self {
        Verifier::default()
    }

    /// The effect summary of `program` under `spec` with `regions`
    /// anchoring data-dependent global addresses, inferred once and
    /// cached by (program, spec, regions) fingerprints — the same
    /// steady-state contract as the admission cache, so schedulers can
    /// query footprints per cohort without re-running the analysis.
    pub fn effects(
        &self,
        program: &Program,
        spec: &LaunchSpec,
        regions: &effects::RegionMap,
    ) -> Arc<effects::CachedEffects> {
        let key = (
            program.fingerprint(),
            spec.fingerprint(),
            regions.fingerprint(),
        );
        {
            let cache = self.effects_cache.lock().expect("effects cache poisoned");
            if let Some(hit) = cache.get(&key) {
                return Arc::clone(hit);
            }
        }
        let computed = Arc::new(effects::CachedEffects::new(effects::infer_effects(
            program, spec, regions,
        )));
        let mut cache = self.effects_cache.lock().expect("effects cache poisoned");
        if cache.len() >= VERIFIER_CACHE_CAP {
            cache.clear();
        }
        Arc::clone(cache.entry(key).or_insert(computed))
    }
}

impl LaunchGate for Verifier {
    fn check(
        &self,
        program: &Program,
        cfg: &LaunchConfig,
        mem: &DeviceMemory,
        pool: &ConstPool,
    ) -> Result<(), GateRejection> {
        let spec = LaunchSpec::from_launch(cfg, mem, pool);
        let key = (program.fingerprint(), spec.fingerprint());
        {
            let admitted = self.admitted.lock().expect("verifier cache poisoned");
            if admitted.contains(&key) {
                return Ok(());
            }
        }
        let report = verify_program(program, &spec);
        match report.rejection() {
            Some(r) => Err(r),
            None => {
                let mut admitted = self.admitted.lock().expect("verifier cache poisoned");
                if admitted.len() >= VERIFIER_CACHE_CAP {
                    admitted.clear();
                }
                admitted.insert(key);
                Ok(())
            }
        }
    }
}
