//! Random lint-clean kernel corpus for differential testing.
//!
//! [`build_kernel`] turns a seed plus a step recipe into a structured
//! kernel that is memory-safe and race-free *by construction*: every lane
//! mutates a private accumulator (arithmetic, parity branches, short
//! counted loops) and finally stores it to its own global word. That makes
//! the corpus doubly useful:
//!
//! * the analyzer property tests assert these kernels lint clean (the gate
//!   never rejects a constructively safe program), and
//! * executor differential tests run them through the scalar, legacy-SIMT,
//!   and pre-decoded engines, asserting bit-identical memory and stats.
//!
//! The recipe bytes map to step kinds via `step % 6`, so any byte vector —
//! e.g. one drawn by proptest — is a valid recipe.

use rhythm_simt::ir::{BinOp, Program, ProgramBuilder, Reg};

/// Build a random structured kernel over per-lane slots: `steps.len()`
/// accumulator mutations chosen by [`apply_step`], ending with a store of
/// the accumulator to the lane's own word (`global[gid * 4]`).
///
/// Launch it with at least `lanes * 4` bytes of global memory and no
/// params.
pub fn build_kernel(seed: u32, steps: &[u8]) -> Program {
    let mut b = ProgramBuilder::new("random_clean");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    let acc = b.reg();
    let s = b.imm(seed | 1);
    b.bin_into(acc, BinOp::Mul, gid, s);
    for &step in steps {
        apply_step(&mut b, acc, step);
    }
    b.st_global_word(addr, 0, acc);
    b.halt();
    b.build().expect("builder emits valid programs")
}

/// Append one accumulator mutation chosen by `step % 6`: add/multiply a
/// constant, a parity-guarded xor (`if_then`), a parity-selected
/// multiply-or-add (`if_then_else`), a short counted loop, or a
/// shift-and-xor mix.
pub fn apply_step(b: &mut ProgramBuilder, acc: Reg, step: u8) {
    match step % 6 {
        0 => {
            let c = b.imm(0x9E37_79B9);
            b.bin_into(acc, BinOp::Add, acc, c);
        }
        1 => {
            let c = b.imm((step as u32).wrapping_mul(2654435761) | 1);
            b.bin_into(acc, BinOp::Mul, acc, c);
        }
        2 => {
            let one = b.imm(1);
            let parity = b.bin(BinOp::And, acc, one);
            b.if_then(parity, |b| {
                let c = b.imm(0x5bd1);
                b.bin_into(acc, BinOp::Xor, acc, c);
            });
        }
        3 => {
            let one = b.imm(1);
            let parity = b.bin(BinOp::And, acc, one);
            b.if_then_else(
                parity,
                |b| {
                    let c = b.imm(3);
                    b.bin_into(acc, BinOp::Mul, acc, c);
                },
                |b| {
                    let c = b.imm(7);
                    b.bin_into(acc, BinOp::Add, acc, c);
                },
            );
        }
        4 => {
            let n = b.imm((step as u32 % 3) + 1);
            b.for_loop(n, |b, i| {
                b.bin_into(acc, BinOp::Add, acc, i);
            });
        }
        _ => {
            let sh = b.imm(step as u32 % 31);
            let rot = b.bin(BinOp::Shl, acc, sh);
            b.bin_into(acc, BinOp::Xor, acc, rot);
        }
    }
}

/// Effect-inference firing kernel: a store whose address is exactly
/// lane-affine (`global[gid * stride + offset]`), so its summary is a
/// single exact strided region `[offset, offset + stride·(lanes-1) + 4)`.
/// With distinct `offset` ranges, two such kernels form the disjoint /
/// overlapping writer pairs the `interferes` oracle is tested against.
pub fn strided_writer(name: &str, stride: u32, offset: u32) -> Program {
    let mut b = ProgramBuilder::new(name);
    let gid = b.global_id();
    let s = b.imm(stride);
    let scaled = b.bin(BinOp::Mul, gid, s);
    let v = b.imm(0xC0FF_EE00 | offset);
    b.st_global_word(scaled, offset, v);
    b.halt();
    b.build().expect("builder emits valid programs")
}

/// Effect-inference near-miss kernel: the stored-to address is *loaded*
/// from memory (`global[global[gid * 4]] = gid`), so no static bound
/// exists. Without a declared-region anchor or a known global extent the
/// write footprint is forced to ⊤; with an anchor it degrades to a
/// claimed (sanitizer-checked) region instead.
pub fn data_dependent_writer() -> Program {
    let mut b = ProgramBuilder::new("data_dependent_writer");
    let gid = b.global_id();
    let four = b.imm(4);
    let slot = b.bin(BinOp::Mul, gid, four);
    let target = b.ld_global_word(slot, 0);
    b.st_global_word(target, 0, gid);
    b.halt();
    b.build().expect("builder emits valid programs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_step_kind_builds() {
        // One kernel exercising all six step kinds, plus divergent shapes.
        let p = build_kernel(42, &[0, 1, 2, 3, 4, 5]);
        assert!(p.blocks().len() > 1, "branches and loops add blocks");
        assert_eq!(p.name(), "random_clean");
    }

    #[test]
    fn recipes_are_deterministic() {
        let a = build_kernel(7, &[9, 8, 7]);
        let b = build_kernel(7, &[9, 8, 7]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = build_kernel(8, &[9, 8, 7]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
