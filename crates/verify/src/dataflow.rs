//! The analyzer's dataflow engine: an abstract-value lattice tracking
//! lane-affine address arithmetic and divergence taint, computed
//! flow-insensitively to a fixpoint, plus the CFG facts (reachability,
//! forward dominators, back edges, tainted-guard regions) the rule passes
//! consume.
//!
//! # The lattice
//!
//! Every register is abstracted as a [`Shape`] plus a taint bit:
//!
//! * `Const(c)` — the register holds `c` whenever any of its defs has
//!   executed (exact modulo 2³²).
//! * `Affine { sym, coeff, base }` — the register holds
//!   `base + coeff·sym` (wrapping) where `sym` is the lane id or the
//!   global lane id. `coeff` is nonzero, so an affine value provably
//!   differs between some lanes. `base` may be unknown (still affine in
//!   the symbol, offset by a launch-uniform unknown).
//! * `Any` — no structural fact.
//!
//! The taint bit is a *may* analysis: `tainted == false` means the value
//! is proven launch-uniform (identical in every lane); `true` means it may
//! differ across lanes. Taint enters at `LaneId`/`GlobalId`, at loads from
//! lane-varying memory, and — via control dependence — at any definition
//! executed under a lane-divergent branch (the implicit-flow rule that
//! catches `while (cont)` loops whose `cont` flag is cleared under a
//! data-dependent condition).
//!
//! Values are joined over **all** definitions of a register, ignoring
//! control flow. This is deliberately coarse: banking kernels have
//! thousands of registers and hundreds of blocks, and per-block dense
//! states would cost tens of megabytes. Imprecision only ever widens a
//! value toward `Any`/tainted, which suppresses `Error`-severity claims
//! rather than fabricating them.

use rhythm_simt::exec::WARP_SIZE;
use rhythm_simt::ir::{BinOp, CfgInfo, Op, Program, Reg, Terminator, EXIT_BLOCK};

use crate::LaunchSpec;

/// The lane symbol an affine value varies over.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Sym {
    /// Lane index within the warp (`Op::LaneId`), range `0..32`.
    Lane,
    /// Global lane index within the launch (`Op::GlobalId`).
    Gid,
}

/// Structural abstraction of a register value. See the module docs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Shape {
    /// No definition seen yet.
    Bottom,
    /// Exactly this constant.
    Const(u32),
    /// `base + coeff·sym` (wrapping); `coeff != 0`; `base == None` means
    /// the base is an unknown launch-uniform value.
    Affine {
        /// The varying symbol.
        sym: Sym,
        /// Per-lane stride (nonzero).
        coeff: u32,
        /// Known base, or `None` for "uniform but unknown".
        base: Option<u32>,
    },
    /// Anything.
    Any,
}

/// A register's abstract value: shape plus divergence taint.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Abs {
    /// Structural value.
    pub shape: Shape,
    /// `true` when the value may differ across lanes.
    pub tainted: bool,
}

impl Abs {
    /// The bottom element (no defs seen).
    pub const BOTTOM: Abs = Abs {
        shape: Shape::Bottom,
        tainted: false,
    };

    fn konst(c: u32) -> Abs {
        Abs {
            shape: Shape::Const(c),
            tainted: false,
        }
    }

    fn affine(sym: Sym, coeff: u32, base: Option<u32>) -> Abs {
        debug_assert_ne!(coeff, 0);
        Abs {
            shape: Shape::Affine { sym, coeff, base },
            tainted: true,
        }
    }

    fn any(tainted: bool) -> Abs {
        Abs {
            shape: Shape::Any,
            tainted,
        }
    }

    /// Least upper bound of two abstractions.
    pub fn join(self, other: Abs) -> Abs {
        let tainted = self.tainted || other.tainted;
        let shape = match (self.shape, other.shape) {
            (Shape::Bottom, s) | (s, Shape::Bottom) => s,
            (a, b) if a == b => a,
            (
                Shape::Affine {
                    sym: s1,
                    coeff: c1,
                    base: b1,
                },
                Shape::Affine {
                    sym: s2,
                    coeff: c2,
                    base: b2,
                },
            ) if s1 == s2 && c1 == c2 => {
                // Same stride, different base: still affine, base unknown.
                debug_assert_ne!(b1, b2);
                Shape::Affine {
                    sym: s1,
                    coeff: c1,
                    base: None,
                }
            }
            _ => Shape::Any,
        };
        Abs { shape, tainted }
    }

    /// True when the shape is a fully known constant or affine form.
    pub fn shape_known(&self) -> bool {
        matches!(
            self.shape,
            Shape::Const(_) | Shape::Affine { base: Some(_), .. }
        )
    }
}

fn add_shapes(a: Shape, b: Shape) -> Shape {
    match (a, b) {
        (Shape::Const(x), Shape::Const(y)) => Shape::Const(x.wrapping_add(y)),
        (Shape::Affine { sym, coeff, base }, Shape::Const(c))
        | (Shape::Const(c), Shape::Affine { sym, coeff, base }) => Shape::Affine {
            sym,
            coeff,
            base: base.map(|b| b.wrapping_add(c)),
        },
        (
            Shape::Affine {
                sym: s1,
                coeff: c1,
                base: b1,
            },
            Shape::Affine {
                sym: s2,
                coeff: c2,
                base: b2,
            },
        ) if s1 == s2 => {
            let coeff = c1.wrapping_add(c2);
            let base = match (b1, b2) {
                (Some(x), Some(y)) => Some(x.wrapping_add(y)),
                _ => None,
            };
            if coeff == 0 {
                match base {
                    Some(b) => Shape::Const(b),
                    None => Shape::Any,
                }
            } else {
                Shape::Affine {
                    sym: s1,
                    coeff,
                    base,
                }
            }
        }
        // Affine + unknown-uniform keeps the stride with an unknown base.
        (Shape::Affine { sym, coeff, .. }, Shape::Any)
        | (Shape::Any, Shape::Affine { sym, coeff, .. }) => Shape::Affine {
            sym,
            coeff,
            base: None,
        },
        _ => Shape::Any,
    }
}

fn neg_shape(s: Shape) -> Shape {
    match s {
        Shape::Const(c) => Shape::Const(c.wrapping_neg()),
        Shape::Affine { sym, coeff, base } => Shape::Affine {
            sym,
            coeff: coeff.wrapping_neg(),
            base: base.map(|b| b.wrapping_neg()),
        },
        s => s,
    }
}

fn mul_shapes(a: Shape, b: Shape) -> Shape {
    match (a, b) {
        (Shape::Const(x), Shape::Const(y)) => Shape::Const(x.wrapping_mul(y)),
        (Shape::Affine { sym, coeff, base }, Shape::Const(c))
        | (Shape::Const(c), Shape::Affine { sym, coeff, base }) => {
            let coeff = coeff.wrapping_mul(c);
            if coeff == 0 {
                match base {
                    Some(b) => Shape::Const(b.wrapping_mul(c)),
                    None => Shape::Any,
                }
            } else {
                Shape::Affine {
                    sym,
                    coeff,
                    base: base.map(|b| b.wrapping_mul(c)),
                }
            }
        }
        _ => Shape::Any,
    }
}

/// Results of the dataflow + CFG analysis for one program.
pub struct Analysis {
    env: Vec<Abs>,
    /// Per-block: reachable from the entry.
    pub reachable: Vec<bool>,
    /// Per-block: executes under some lane-divergent branch (strictly
    /// inside a tainted branch's divergent region, reconvergence point
    /// excluded).
    pub guarded: Vec<bool>,
    /// Immediate post-dominators (the executor's reconvergence points).
    pub cfg: CfgInfo,
    /// Back edges `(from, to)` under forward dominance (`to` dominates
    /// `from`), i.e. natural-loop latches and their headers.
    pub back_edges: Vec<(u32, u32)>,
    /// Whether the launch has more than one lane (race rules are inert
    /// for single-lane launches).
    pub multi_lane: bool,
}

impl Analysis {
    /// Abstract value of a register.
    pub fn abs(&self, r: Reg) -> Abs {
        self.env.get(r.0 as usize).copied().unwrap_or(Abs::BOTTOM)
    }

    /// Shorthand: may the register differ across lanes?
    pub fn tainted(&self, r: Reg) -> bool {
        self.abs(r).tainted
    }

    /// Inclusive range of values the lane symbol takes in this launch.
    pub fn sym_range(sym: Sym, lanes: u32) -> u32 {
        let lanes = lanes.max(1);
        match sym {
            Sym::Lane => lanes.min(WARP_SIZE),
            Sym::Gid => lanes,
        }
    }

    /// Run the analysis.
    pub fn run(program: &Program, spec: &LaunchSpec) -> Analysis {
        let n = program.blocks().len();
        let cfg = CfgInfo::analyze(program);
        let reachable = reachable_from_entry(program);
        let back_edges = find_back_edges(program, &reachable);

        let mut env = vec![Abs::BOTTOM; program.num_regs() as usize];
        let mut guarded = vec![false; n];

        // Alternate value sweeps with guard-region recomputation until
        // both stabilize. Every step is monotone (values climb a
        // height-3 lattice, the guarded set only grows), so this
        // terminates quickly in practice (a handful of sweeps).
        loop {
            let mut changed = false;
            for (b, block) in program.blocks().iter().enumerate() {
                if !reachable[b] {
                    continue;
                }
                for op in &block.ops {
                    let mut v = transfer(op, &env, spec);
                    if guarded[b] {
                        // Implicit flow: a def under a divergent branch
                        // may or may not execute per lane.
                        v.tainted = true;
                    }
                    if let Some(dst) = op.dst() {
                        let slot = &mut env[dst.0 as usize];
                        let joined = slot.join(v);
                        if joined != *slot {
                            *slot = joined;
                            changed = true;
                        }
                    }
                }
            }
            let new_guarded = guarded_blocks(program, &cfg, &reachable, &env);
            if new_guarded != guarded {
                guarded = new_guarded;
                changed = true;
            }
            if !changed {
                break;
            }
        }

        Analysis {
            env,
            reachable,
            guarded,
            cfg,
            back_edges,
            multi_lane: spec.lanes > 1,
        }
    }
}

fn transfer(op: &Op, env: &[Abs], spec: &LaunchSpec) -> Abs {
    let get = |r: Reg| env.get(r.0 as usize).copied().unwrap_or(Abs::BOTTOM);
    match *op {
        Op::Imm { value, .. } => Abs::konst(value),
        Op::Mov { src, .. } => get(src),
        Op::LaneId { .. } => Abs::affine(Sym::Lane, 1, Some(0)),
        Op::GlobalId { .. } => Abs::affine(Sym::Gid, 1, Some(0)),
        Op::Param { index, .. } => match &spec.params {
            Some(p) => match p.get(index as usize) {
                Some(&v) => Abs::konst(v),
                // Out-of-range: the bounds pass reports it; the value
                // itself never materializes (launch faults first).
                None => Abs::any(false),
            },
            None => Abs::any(false),
        },
        Op::Ld { space, addr, .. } => {
            use rhythm_simt::ir::MemSpace;
            let a = get(addr);
            if a.shape == Shape::Bottom {
                return Abs::BOTTOM;
            }
            match space {
                // Read-only broadcast memory: a uniform address yields a
                // uniform value.
                MemSpace::Const => Abs::any(a.tainted),
                // Global/Shared contents may have been written per-lane;
                // Local is private per-lane state. All lane-varying.
                _ => Abs::any(true),
            }
        }
        Op::St { .. } => Abs::BOTTOM, // no dst
        Op::Bin { op, a, b, .. } => {
            let (x, y) = (get(a), get(b));
            if x.shape == Shape::Bottom || y.shape == Shape::Bottom {
                return Abs::BOTTOM;
            }
            let shape = match op {
                BinOp::Add => add_shapes(x.shape, y.shape),
                BinOp::Sub => add_shapes(x.shape, neg_shape(y.shape)),
                BinOp::Mul => mul_shapes(x.shape, y.shape),
                // A constant left shift is multiplication by a power of
                // two modulo 2³², which distributes over affine forms.
                BinOp::Shl => {
                    if let Shape::Const(k) = y.shape {
                        mul_shapes(x.shape, Shape::Const(1u32.wrapping_shl(k)))
                    } else {
                        Shape::Any
                    }
                }
                other => match (x.shape, y.shape) {
                    (Shape::Const(p), Shape::Const(q)) => Shape::Const(other.eval(p, q)),
                    _ => Shape::Any,
                },
            };
            let tainted = match shape {
                Shape::Const(_) if !x.tainted && !y.tainted => false,
                Shape::Affine { .. } => true,
                _ => x.tainted || y.tainted,
            };
            Abs { shape, tainted }
        }
        Op::Un { op, a, .. } => {
            let x = get(a);
            if x.shape == Shape::Bottom {
                return Abs::BOTTOM;
            }
            match x.shape {
                Shape::Const(c) => Abs::konst(op.eval(c)),
                _ => Abs::any(x.tainted),
            }
        }
        // Butterfly reduction broadcasts one value to every active lane
        // of the warp: warp-uniform (taint tracks intra-warp divergence).
        Op::WarpRedMax { src, .. } => {
            let x = get(src);
            if x.shape == Shape::Bottom {
                Abs::BOTTOM
            } else {
                Abs::any(false)
            }
        }
        // Old value at a contended location: serialization order makes it
        // lane-dependent by construction.
        Op::AtomicAdd { .. } => Abs::any(true),
    }
}

/// Blocks reachable from the entry.
pub fn reachable_from_entry(program: &Program) -> Vec<bool> {
    let n = program.blocks().len();
    let mut seen = vec![false; n];
    let mut stack = vec![program.entry() as usize];
    while let Some(b) = stack.pop() {
        if seen[b] {
            continue;
        }
        seen[b] = true;
        for s in program.blocks()[b].term.successors() {
            stack.push(s as usize);
        }
    }
    seen
}

/// Back edges `(latch, header)` of the reachable CFG under forward
/// dominance: edge `u -> v` where `v` dominates `u`.
fn find_back_edges(program: &Program, reachable: &[bool]) -> Vec<(u32, u32)> {
    let n = program.blocks().len();
    // Iterative bitset dominator computation (forward CFG).
    let words = n.div_ceil(64);
    let full = vec![u64::MAX; words];
    let mut dom: Vec<Vec<u64>> = vec![full; n];
    let entry = program.entry() as usize;
    dom[entry] = vec![0; words];
    dom[entry][entry / 64] |= 1 << (entry % 64);

    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, block) in program.blocks().iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        for s in block.term.successors() {
            preds[s as usize].push(b);
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            if b == entry || !reachable[b] {
                continue;
            }
            let mut inter = vec![u64::MAX; words];
            let mut any_pred = false;
            for &p in &preds[b] {
                any_pred = true;
                for (w, i) in inter.iter_mut().enumerate() {
                    *i &= dom[p][w];
                }
            }
            if !any_pred {
                continue;
            }
            inter[b / 64] |= 1 << (b % 64);
            if inter != dom[b] {
                dom[b] = inter;
                changed = true;
            }
        }
    }

    let dominates = |v: usize, u: usize| dom[u][v / 64] & (1 << (v % 64)) != 0;
    let mut edges = Vec::new();
    for (u, block) in program.blocks().iter().enumerate() {
        if !reachable[u] {
            continue;
        }
        for s in block.term.successors() {
            let v = s as usize;
            if reachable[v] && dominates(v, u) {
                edges.push((u as u32, v as u32));
            }
        }
    }
    edges
}

/// Blocks strictly inside the divergent region of some tainted branch:
/// reachable from either branch target without passing through the
/// branch's reconvergence point (the region is unbounded when the branch
/// reconverges only at kernel exit).
fn guarded_blocks(program: &Program, cfg: &CfgInfo, reachable: &[bool], env: &[Abs]) -> Vec<bool> {
    let n = program.blocks().len();
    let mut guarded = vec![false; n];
    for (b, block) in program.blocks().iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        let Terminator::Br { cond, .. } = block.term else {
            continue;
        };
        let tainted = env.get(cond.0 as usize).map(|a| a.tainted).unwrap_or(false);
        if !tainted {
            continue;
        }
        let stop = cfg.try_ipdom(b as u32).unwrap_or(EXIT_BLOCK);
        let mut stack: Vec<usize> = block
            .term
            .successors()
            .iter()
            .map(|&s| s as usize)
            .collect();
        let mut seen = vec![false; n];
        while let Some(x) = stack.pop() {
            if x as u32 == stop || seen[x] {
                continue;
            }
            seen[x] = true;
            guarded[x] = true;
            for s in program.blocks()[x].term.successors() {
                stack.push(s as usize);
            }
        }
    }
    guarded
}
