//! The rule catalogue: each pass walks the analyzed program and appends
//! [`Diagnostic`]s. Severity policy:
//!
//! * `Error` is reserved for defects the analysis *proves* (a lost-update
//!   store, an out-of-bounds access witnessed by a concrete lane, a launch
//!   parameter that cannot be supplied). Errors abort gated launches.
//! * `Warning` marks patterns that are almost certainly performance or
//!   correctness hazards but depend on data (divergent reconvergence at
//!   kernel exit, unbounded lane-dependent loops, may-race stores,
//!   strided access).
//! * `Info` marks throughput smells (scatter, serialization, dead code).

use rhythm_simt::ir::{BinOp, MemSpace, Op, Program, Reg, Terminator, Width, EXIT_BLOCK};

use crate::dataflow::{Abs, Analysis, Shape, Sym};
use crate::{Diagnostic, LaunchSpec, Severity};

/// Rule identifiers, as stable strings (used in reports, JSON, and CI
/// gating).
pub mod rule_id {
    /// Lane-divergent branch that reconverges only at kernel exit.
    pub const DIVERGENCE_EXIT: &str = "divergence-exit-reconvergence";
    /// Lane-tainted loop back-edge condition with no provable bound.
    pub const DIVERGENCE_UNBOUNDED_LOOP: &str = "divergence-unbounded-loop";
    /// Lane-tainted shared-memory address (bank-conflict style scatter).
    pub const DIVERGENCE_SHARED_SCATTER: &str = "divergence-shared-scatter";
    /// All lanes store different values to one global address.
    pub const RACE_UNIFORM_STORE: &str = "race-uniform-store";
    /// All lanes store the same value to one global address.
    pub const RACE_UNIFORM_STORE_UNIFORM_VALUE: &str = "race-uniform-store-uniform-value";
    /// Cross-lane read/write footprint overlap without atomicity.
    pub const RACE_RW_CONFLICT: &str = "race-rw-conflict";
    /// Access provably outside the declared buffer extent.
    pub const BOUNDS_OOB: &str = "bounds-oob";
    /// `Param` index beyond the supplied parameter vector.
    pub const BOUNDS_MISSING_PARAM: &str = "bounds-missing-param";
    /// Non-unit-stride lane-varying global access.
    pub const COALESCE_STRIDED: &str = "coalesce-strided-access";
    /// Same-address atomic serializes the warp.
    pub const COALESCE_ATOMIC_SERIAL: &str = "coalesce-atomic-serial";
    /// Lane-varying global access with no recognizable structure.
    pub const COALESCE_OPAQUE: &str = "coalesce-opaque-access";
    /// Register read before any definition (reads the zero-fill).
    pub const HYGIENE_USE_BEFORE_DEF: &str = "hygiene-use-before-def";
    /// Block unreachable from the entry.
    pub const HYGIENE_UNREACHABLE: &str = "hygiene-unreachable-block";
    /// Pure register write that no instruction observes.
    pub const HYGIENE_DEAD_STORE: &str = "hygiene-dead-store";
    /// Effect summary degraded to ⊤: a data-dependent address with no
    /// enclosing declared region and no known space extent.
    pub const EFFECTS_TOP: &str = "effects-top-footprint";
    /// Exact inferred effect region exceeds the declared space extent.
    pub const EFFECTS_OOB: &str = "effects-out-of-extent";
}

fn diag(
    out: &mut Vec<Diagnostic>,
    severity: Severity,
    rule: &'static str,
    block: u32,
    op_index: Option<usize>,
    message: String,
) {
    out.push(Diagnostic {
        severity,
        rule,
        block: Some(block),
        op_index,
        message,
    });
}

// ---- divergence ----------------------------------------------------------

/// Divergence-taint family: exit-reconverging branches, unbounded tainted
/// loops, shared-memory scatter.
pub fn divergence(program: &Program, an: &Analysis, out: &mut Vec<Diagnostic>) {
    let headers: Vec<u32> = an.back_edges.iter().map(|&(_, v)| v).collect();
    for (b, block) in program.blocks().iter().enumerate() {
        if !an.reachable[b] {
            continue;
        }
        if let Terminator::Br { cond, .. } = block.term {
            if an.tainted(cond) {
                if an.cfg.try_ipdom(b as u32) == Some(EXIT_BLOCK) {
                    diag(
                        out,
                        Severity::Warning,
                        rule_id::DIVERGENCE_EXIT,
                        b as u32,
                        None,
                        format!(
                            "lane-divergent branch on {cond} reconverges only at kernel \
                             exit; lanes that take the early path stay masked off for \
                             the rest of the kernel"
                        ),
                    );
                }
                if headers.contains(&(b as u32)) && !provably_bounded(program, an, cond) {
                    diag(
                        out,
                        Severity::Warning,
                        rule_id::DIVERGENCE_UNBOUNDED_LOOP,
                        b as u32,
                        None,
                        format!(
                            "loop back-edge condition {cond} is lane-dependent with no \
                             comparison against a known bound; iteration counts can \
                             diverge per lane (the warp runs the worst lane's count)"
                        ),
                    );
                }
            }
        }
        for (i, op) in block.ops.iter().enumerate() {
            if let Op::Ld {
                space: MemSpace::Shared,
                addr,
                ..
            }
            | Op::St {
                space: MemSpace::Shared,
                addr,
                ..
            } = op
            {
                if an.tainted(*addr) {
                    diag(
                        out,
                        Severity::Info,
                        rule_id::DIVERGENCE_SHARED_SCATTER,
                        b as u32,
                        Some(i),
                        format!("shared-memory access through lane-varying address {addr}"),
                    );
                }
            }
        }
    }
}

/// Bound heuristic for loop conditions: some definition of the condition
/// register (following one `Mov` hop) is a comparison against an operand
/// with known structure (constant or affine-in-lane), i.e. the classic
/// `i < n` counted-loop shape.
fn provably_bounded(program: &Program, an: &Analysis, cond: Reg) -> bool {
    let mut targets = vec![cond];
    // One Mov hop: `while (c)` is often emitted as `cond = Mov c`.
    for block in program.blocks() {
        for op in &block.ops {
            if let Op::Mov { dst, src } = op {
                if *dst == cond {
                    targets.push(*src);
                }
            }
        }
    }
    let known = |r: Reg| matches!(an.abs(r).shape, Shape::Const(_) | Shape::Affine { .. });
    for block in program.blocks() {
        for op in &block.ops {
            if let Op::Bin { op: bop, dst, a, b } = op {
                if targets.contains(dst)
                    && matches!(
                        bop,
                        BinOp::Eq | BinOp::Ne | BinOp::LtU | BinOp::LeU | BinOp::GtU | BinOp::GeU
                    )
                    && (known(*a) || known(*b))
                {
                    return true;
                }
            }
        }
    }
    false
}

// ---- races ---------------------------------------------------------------

/// One analyzed global-memory access, with the offset folded into the
/// affine base.
struct Access {
    block: u32,
    op_index: usize,
    /// `(coeff, sym)` or `None` for a uniform (all-lanes-equal) address.
    stride: Option<(u32, Sym)>,
    base: u32,
    width: u32,
    is_write: bool,
    is_atomic: bool,
}

fn known_access(abs: Abs, offset: u32) -> Option<(Option<(u32, Sym)>, u32)> {
    match abs.shape {
        Shape::Const(c) => Some((None, c.wrapping_add(offset))),
        Shape::Affine {
            sym,
            coeff,
            base: Some(b),
        } => Some((Some((coeff, sym)), b.wrapping_add(offset))),
        _ => None,
    }
}

/// Race family: uniform-address stores (lost updates) and cross-lane
/// read/write footprint conflicts on global memory.
pub fn races(program: &Program, spec: &LaunchSpec, an: &Analysis, out: &mut Vec<Diagnostic>) {
    if !an.multi_lane {
        return;
    }
    let mut accesses: Vec<Access> = Vec::new();
    for (b, block) in program.blocks().iter().enumerate() {
        if !an.reachable[b] {
            continue;
        }
        for (i, op) in block.ops.iter().enumerate() {
            let (space, addr, offset, width, is_write, is_atomic, value) = match *op {
                Op::Ld {
                    space,
                    addr,
                    offset,
                    width,
                    ..
                } => (space, addr, offset, width, false, false, None),
                Op::St {
                    space,
                    addr,
                    offset,
                    width,
                    src,
                } => (space, addr, offset, width, true, false, Some(src)),
                Op::AtomicAdd {
                    space,
                    addr,
                    offset,
                    src,
                    ..
                } => (space, addr, offset, Width::Word, true, true, Some(src)),
                _ => continue,
            };
            if space != MemSpace::Global {
                continue;
            }
            let a = an.abs(addr);
            // Uniform-address plain stores: every lane writes the same
            // location; the warp's lockstep store loses all but one lane.
            if is_write && !is_atomic && !a.tainted {
                let src = value.expect("writes carry a source");
                let v = an.abs(src);
                if let Shape::Affine { .. } = v.shape {
                    diag(
                        out,
                        Severity::Error,
                        rule_id::RACE_UNIFORM_STORE,
                        b as u32,
                        Some(i),
                        format!(
                            "all lanes store to one global address through uniform {addr} \
                             but the value {src} provably differs per lane: every lane's \
                             update except one is lost (use AtomicAdd or a per-lane \
                             address)"
                        ),
                    );
                } else if v.tainted {
                    diag(
                        out,
                        Severity::Warning,
                        rule_id::RACE_UNIFORM_STORE,
                        b as u32,
                        Some(i),
                        format!(
                            "all lanes store to one global address through uniform {addr} \
                             with a value that may differ per lane; colliding lanes lose \
                             updates"
                        ),
                    );
                } else {
                    diag(
                        out,
                        Severity::Info,
                        rule_id::RACE_UNIFORM_STORE_UNIFORM_VALUE,
                        b as u32,
                        Some(i),
                        format!(
                            "all lanes store the same value to one global address via \
                             {addr}; harmless but redundant (one lane suffices)"
                        ),
                    );
                }
            }
            if let Some((stride, base)) = known_access(a, offset) {
                accesses.push(Access {
                    block: b as u32,
                    op_index: i,
                    stride,
                    base,
                    width: width.bytes(),
                    is_write,
                    is_atomic,
                });
            }
        }
    }

    // Pairwise cross-lane footprint overlap among structurally known
    // accesses. Lane enumeration is capped: affine conflicts repeat with
    // small periods, so the first lanes witness them.
    let lanes = spec.lanes.clamp(2, 64);
    let sym_max = |s: Option<(u32, Sym)>| match s {
        None => 1,
        Some((_, sym)) => Analysis::sym_range(sym, spec.lanes).min(lanes),
    };
    let addr_of = |acc: &Access, i: u32| match acc.stride {
        None => acc.base,
        Some((coeff, _)) => acc.base.wrapping_add(coeff.wrapping_mul(i)),
    };
    // Two accesses at equal symbol value belong to the same physical lane
    // only if the symbol identifies the lane globally.
    let same_lane = |a: &Access, b: &Access, i: u32, j: u32| match (a.stride, b.stride) {
        (Some((_, sa)), Some((_, sb))) if sa == sb => {
            i == j && (sa == Sym::Gid || spec.lanes <= 32)
        }
        _ => false,
    };
    for (x, a) in accesses.iter().enumerate() {
        for b in accesses.iter().skip(x) {
            let self_pair = std::ptr::eq(a, b);
            if !(a.is_write || b.is_write) || (a.is_atomic && b.is_atomic) {
                continue;
            }
            // Uniform-store collisions are reported above; skip the
            // degenerate uniform/uniform pairing here.
            if a.stride.is_none() && b.stride.is_none() {
                continue;
            }
            let (na, nb) = (sym_max(a.stride), sym_max(b.stride));
            let mut witness = None;
            'scan: for i in 0..na {
                for j in 0..nb {
                    if self_pair && i == j {
                        continue;
                    }
                    if same_lane(a, b, i, j) {
                        continue;
                    }
                    let (pa, pb) = (addr_of(a, i) as u64, addr_of(b, j) as u64);
                    if pa < pb + b.width as u64 && pb < pa + a.width as u64 {
                        witness = Some((i, j));
                        break 'scan;
                    }
                }
            }
            if let Some((i, j)) = witness {
                diag(
                    out,
                    Severity::Warning,
                    rule_id::RACE_RW_CONFLICT,
                    a.block,
                    Some(a.op_index),
                    format!(
                        "global {} here overlaps the {} at bb{}.{} across lanes without \
                         atomicity (e.g. lane {} vs lane {} touch the same bytes); \
                         result depends on warp scheduling",
                        if a.is_write { "write" } else { "read" },
                        if b.is_write { "write" } else { "read" },
                        b.block,
                        b.op_index,
                        i,
                        j
                    ),
                );
            }
        }
    }
}

// ---- bounds --------------------------------------------------------------

/// Bounds family: concrete per-lane address evaluation against declared
/// extents, plus unsupplied launch parameters.
pub fn bounds(program: &Program, spec: &LaunchSpec, an: &Analysis, out: &mut Vec<Diagnostic>) {
    for (b, block) in program.blocks().iter().enumerate() {
        if !an.reachable[b] {
            continue;
        }
        for (i, op) in block.ops.iter().enumerate() {
            if let Op::Param { index, .. } = *op {
                if let Some(p) = &spec.params {
                    if index as usize >= p.len() {
                        diag(
                            out,
                            Severity::Error,
                            rule_id::BOUNDS_MISSING_PARAM,
                            b as u32,
                            Some(i),
                            format!(
                                "launch parameter {index} is read but only {} parameters \
                                 are supplied; execution would fault with MissingParam",
                                p.len()
                            ),
                        );
                    }
                }
                continue;
            }
            let (space, addr, offset, width) = match *op {
                Op::Ld {
                    space,
                    addr,
                    offset,
                    width,
                    ..
                }
                | Op::St {
                    space,
                    addr,
                    offset,
                    width,
                    ..
                } => (space, addr, offset, width),
                Op::AtomicAdd {
                    space,
                    addr,
                    offset,
                    ..
                } => (space, addr, offset, Width::Word),
                _ => continue,
            };
            let Some(extent) = spec.extent(space) else {
                continue;
            };
            let a = an.abs(addr);
            let Some((stride, base)) = known_access(a, offset) else {
                continue;
            };
            let w = width.bytes() as u64;
            let n = match stride {
                None => 1,
                Some((_, sym)) => Analysis::sym_range(sym, spec.lanes),
            };
            for s in 0..n {
                let eff = match stride {
                    None => base,
                    Some((coeff, _)) => base.wrapping_add(coeff.wrapping_mul(s)),
                };
                if eff as u64 + w > extent {
                    let lane = match stride {
                        None => String::from("every lane"),
                        Some((_, Sym::Lane)) => format!("warp lane {s}"),
                        Some((_, Sym::Gid)) => format!("lane {s}"),
                    };
                    diag(
                        out,
                        Severity::Error,
                        rule_id::BOUNDS_OOB,
                        b as u32,
                        Some(i),
                        format!(
                            "{space:?} access of {w} byte(s) at address {eff} exceeds the \
                             declared extent of {extent} bytes ({lane})"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

// ---- coalescing ----------------------------------------------------------

/// Coalescing family: strided or opaque lane-varying global accesses and
/// warp-serializing atomics.
pub fn coalescing(program: &Program, spec: &LaunchSpec, an: &Analysis, out: &mut Vec<Diagnostic>) {
    for (b, block) in program.blocks().iter().enumerate() {
        if !an.reachable[b] {
            continue;
        }
        for (i, op) in block.ops.iter().enumerate() {
            match *op {
                Op::Ld {
                    space: MemSpace::Global,
                    addr,
                    width,
                    ..
                }
                | Op::St {
                    space: MemSpace::Global,
                    addr,
                    width,
                    ..
                } => {
                    let a = an.abs(addr);
                    match a.shape {
                        Shape::Affine { coeff, .. } if coeff > width.bytes() => {
                            let span = coeff as u64 * 31 + width.bytes() as u64;
                            diag(
                                out,
                                Severity::Warning,
                                rule_id::COALESCE_STRIDED,
                                b as u32,
                                Some(i),
                                format!(
                                    "global access strides {coeff} bytes per lane for a \
                                     {}-byte access; a full warp spans {span} bytes \
                                     (~{} 32 B sectors) instead of one coalesced run",
                                    width.bytes(),
                                    span.div_ceil(32)
                                ),
                            );
                        }
                        Shape::Any if a.tainted => diag(
                            out,
                            Severity::Info,
                            rule_id::COALESCE_OPAQUE,
                            b as u32,
                            Some(i),
                            format!(
                                "global access through {addr} has no recognizable \
                                 per-lane structure; the coalescer may see a scatter"
                            ),
                        ),
                        _ => {}
                    }
                }
                Op::AtomicAdd {
                    space: MemSpace::Global | MemSpace::Shared,
                    addr,
                    ..
                } if !an.tainted(addr) && spec.lanes > 1 => {
                    diag(
                        out,
                        Severity::Warning,
                        rule_id::COALESCE_ATOMIC_SERIAL,
                        b as u32,
                        Some(i),
                        format!(
                            "AtomicAdd through uniform address {addr}: all {} lanes \
                             hit one location and serialize",
                            spec.lanes.min(32)
                        ),
                    );
                }
                _ => {}
            }
        }
    }
}

// ---- hygiene -------------------------------------------------------------

/// Hygiene family: use-before-def, unreachable blocks, dead pure stores.
pub fn hygiene(program: &Program, an: &Analysis, out: &mut Vec<Diagnostic>) {
    let n = program.blocks().len();
    for b in 0..n {
        if !an.reachable[b] {
            diag(
                out,
                Severity::Warning,
                rule_id::HYGIENE_UNREACHABLE,
                b as u32,
                None,
                "block is unreachable from the entry".to_string(),
            );
        }
    }
    use_before_def(program, an, out);
    dead_stores(program, an, out);
}

struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn empty(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64).max(1)],
        }
    }
    fn full(n: usize) -> BitSet {
        let mut s = BitSet::empty(n);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s
    }
    fn get(&self, i: u16) -> bool {
        self.words[i as usize / 64] & (1 << (i % 64)) != 0
    }
    fn set(&mut self, i: u16) {
        self.words[i as usize / 64] |= 1 << (i % 64);
    }
    fn clear(&mut self, i: u16) {
        self.words[i as usize / 64] &= !(1 << (i % 64));
    }
    fn and_assign(&mut self, o: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&o.words) {
            let nv = *a & b;
            changed |= nv != *a;
            *a = nv;
        }
        changed
    }
    fn or_assign(&mut self, o: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&o.words) {
            let nv = *a | b;
            changed |= nv != *a;
            *a = nv;
        }
        changed
    }
    fn clone_set(&self) -> BitSet {
        BitSet {
            words: self.words.clone(),
        }
    }
}

/// Forward must-defined analysis; reads of never-yet-defined registers
/// observe the register file's zero fill — legal but almost always a bug.
fn use_before_def(program: &Program, an: &Analysis, out: &mut Vec<Diagnostic>) {
    let n = program.blocks().len();
    let regs = program.num_regs() as usize;
    let entry = program.entry() as usize;

    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, block) in program.blocks().iter().enumerate() {
        if !an.reachable[b] {
            continue;
        }
        for s in block.term.successors() {
            preds[s as usize].push(b);
        }
    }

    // OUT[b] = IN[b] ∪ defs(b); IN[b] = ∩ preds OUT; entry IN = ∅.
    let mut out_sets: Vec<BitSet> = (0..n).map(|_| BitSet::full(regs)).collect();
    let defs: Vec<BitSet> = program
        .blocks()
        .iter()
        .map(|block| {
            let mut d = BitSet::empty(regs);
            for op in &block.ops {
                if let Some(r) = op.dst() {
                    d.set(r.0);
                }
            }
            d
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            if !an.reachable[b] {
                continue;
            }
            let mut inb = if b == entry {
                BitSet::empty(regs)
            } else {
                let mut s = BitSet::full(regs);
                for &p in &preds[b] {
                    s.and_assign(&out_sets[p]);
                }
                if preds[b].is_empty() {
                    BitSet::empty(regs)
                } else {
                    s
                }
            };
            inb.or_assign(&defs[b]);
            if out_sets[b].words != inb.words {
                out_sets[b] = inb;
                changed = true;
            }
        }
    }

    for (b, block) in program.blocks().iter().enumerate() {
        if !an.reachable[b] {
            continue;
        }
        let mut have = if b == entry {
            BitSet::empty(regs)
        } else {
            let mut s = BitSet::full(regs);
            let mut any = false;
            for &p in &preds[b] {
                any = true;
                s.and_assign(&out_sets[p]);
            }
            if any {
                s
            } else {
                BitSet::empty(regs)
            }
        };
        let check = |r: Reg, have: &BitSet, op_index: Option<usize>, out: &mut Vec<Diagnostic>| {
            if !have.get(r.0) {
                diag(
                    out,
                    Severity::Warning,
                    rule_id::HYGIENE_USE_BEFORE_DEF,
                    b as u32,
                    op_index,
                    format!(
                        "{r} is read before any definition on some path; it holds the \
                         register file's zero fill"
                    ),
                );
            }
        };
        for (i, op) in block.ops.iter().enumerate() {
            for r in op.sources() {
                check(r, &have, Some(i), out);
            }
            if let Some(r) = op.dst() {
                have.set(r.0);
            }
        }
        if let Terminator::Br { cond, .. } = block.term {
            check(cond, &have, Some(block.ops.len()), out);
        }
    }
}

/// Backward liveness; pure register writes whose value is never observed.
fn dead_stores(program: &Program, an: &Analysis, out: &mut Vec<Diagnostic>) {
    let n = program.blocks().len();
    let regs = program.num_regs() as usize;

    // use/def summaries per block (backward within the block).
    let mut use_b: Vec<BitSet> = Vec::with_capacity(n);
    let mut def_b: Vec<BitSet> = Vec::with_capacity(n);
    for block in program.blocks() {
        let mut uses = BitSet::empty(regs);
        let mut defs = BitSet::empty(regs);
        if let Terminator::Br { cond, .. } = block.term {
            uses.set(cond.0);
        }
        for op in block.ops.iter().rev() {
            if let Some(d) = op.dst() {
                uses.clear(d.0);
                defs.set(d.0);
            }
            for s in op.sources() {
                uses.set(s.0);
            }
        }
        use_b.push(uses);
        def_b.push(defs);
    }

    let mut live_in: Vec<BitSet> = (0..n).map(|_| BitSet::empty(regs)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (b, block) in program.blocks().iter().enumerate() {
            let mut live_out = BitSet::empty(regs);
            for s in block.term.successors() {
                live_out.or_assign(&live_in[s as usize]);
            }
            // IN = use ∪ (OUT − def)
            let mut inb = live_out.clone_set();
            for (w, d) in inb.words.iter_mut().zip(&def_b[b].words) {
                *w &= !d;
            }
            inb.or_assign(&use_b[b]);
            if live_in[b].words != inb.words {
                live_in[b] = inb;
                changed = true;
            }
        }
    }

    for (b, block) in program.blocks().iter().enumerate() {
        if !an.reachable[b] {
            continue; // already reported as unreachable
        }
        let mut live = BitSet::empty(regs);
        for s in block.term.successors() {
            live.or_assign(&live_in[s as usize]);
        }
        if let Terminator::Br { cond, .. } = block.term {
            live.set(cond.0);
        }
        // Walk backward, flagging pure writes to dead registers.
        let mut dead: Vec<usize> = Vec::new();
        for (i, op) in block.ops.iter().enumerate().rev() {
            let pure = matches!(
                op,
                Op::Imm { .. }
                    | Op::Mov { .. }
                    | Op::Bin { .. }
                    | Op::Un { .. }
                    | Op::LaneId { .. }
                    | Op::GlobalId { .. }
                    | Op::Param { .. }
            );
            if let Some(d) = op.dst() {
                if pure && !live.get(d.0) {
                    dead.push(i);
                }
                live.clear(d.0);
            }
            for s in op.sources() {
                live.set(s.0);
            }
        }
        for i in dead.into_iter().rev() {
            let d = block.ops[i].dst().expect("dead stores have a dst");
            diag(
                out,
                Severity::Info,
                rule_id::HYGIENE_DEAD_STORE,
                b as u32,
                Some(i),
                format!("{d} is written here but never read afterwards"),
            );
        }
    }
}
