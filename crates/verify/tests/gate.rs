//! End-to-end launch gating: a [`Verifier`]-gated [`Gpu`] rejects defective
//! kernels with a structured diagnostic *before* any lane executes, admits
//! clean kernels, and admits repeats through the fingerprint cache.

use std::sync::Arc;

use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::gpu::{Gpu, GpuConfig};
use rhythm_simt::ir::{BinOp, Program, ProgramBuilder};
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_simt::ExecError;
use rhythm_verify::Verifier;

fn gated_gpu() -> Gpu {
    Gpu::new(GpuConfig::gtx_titan()).with_gate(Arc::new(Verifier::new()))
}

fn lost_update_kernel() -> Program {
    let mut b = ProgramBuilder::new("lost_update");
    let lane = b.lane_id();
    let addr = b.imm(0);
    b.st_global_word(addr, 0, lane);
    b.halt();
    b.build().unwrap()
}

fn oob_kernel() -> Program {
    let mut b = ProgramBuilder::new("oob");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    b.st_global_word(addr, 4, gid); // lane N-1 straddles the end
    b.halt();
    b.build().unwrap()
}

fn clean_kernel() -> Program {
    let mut b = ProgramBuilder::new("clean");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    let v = b.ld_global_word(addr, 0);
    let one = b.imm(1);
    let v1 = b.bin(BinOp::Add, v, one);
    b.st_global_word(addr, 0, v1);
    b.halt();
    b.build().unwrap()
}

#[test]
fn raced_kernel_is_rejected_before_execution() {
    let gpu = gated_gpu();
    let mut mem = DeviceMemory::new(256);
    let err = gpu
        .launch(
            &lost_update_kernel(),
            &LaunchConfig::new(32, []),
            &mut mem,
            &ConstPool::new(),
        )
        .unwrap_err();
    let ExecError::Rejected(r) = err else {
        panic!("expected Rejected, got {err:?}");
    };
    assert_eq!(r.rule, "race-uniform-store");
    assert_eq!(r.program, "lost_update");
    assert_eq!(r.block, Some(0));
    assert!(r.message.contains("lost"), "message: {}", r.message);
    // Nothing executed: device memory still zero.
    assert!(mem.as_bytes().iter().all(|&b| b == 0));
}

#[test]
fn oob_kernel_is_rejected_with_bounds_diagnostic() {
    let gpu = gated_gpu();
    let mut mem = DeviceMemory::new(128); // exactly 32 lanes * 4 bytes
    let err = gpu
        .launch(
            &oob_kernel(),
            &LaunchConfig::new(32, []),
            &mut mem,
            &ConstPool::new(),
        )
        .unwrap_err();
    let ExecError::Rejected(r) = err else {
        panic!("expected Rejected, got {err:?}");
    };
    assert_eq!(r.rule, "bounds-oob");
    assert!(mem.as_bytes().iter().all(|&b| b == 0));
}

#[test]
fn clean_kernel_is_admitted_and_cached_repeats_run() {
    let gpu = gated_gpu();
    let pool = ConstPool::new();
    let program = clean_kernel();
    let cfg = LaunchConfig::new(32, []);
    let mut mem = DeviceMemory::new(128);
    for round in 1..=3u8 {
        gpu.launch(&program, &cfg, &mut mem, &pool)
            .expect("clean kernel must be admitted");
        for lane in 0..32usize {
            let w = u32::from_le_bytes(mem.as_bytes()[lane * 4..lane * 4 + 4].try_into().unwrap());
            assert_eq!(w, round as u32, "lane {lane} after round {round}");
        }
    }
}

#[test]
fn same_kernel_is_rejudged_when_the_launch_extent_shrinks() {
    // Admission is per (program, launch environment): the kernel that is
    // clean at 128 bytes is out of bounds at 64 bytes even after the
    // 128-byte verdict was cached.
    let gpu = gated_gpu();
    let pool = ConstPool::new();
    let program = clean_kernel();
    let cfg = LaunchConfig::new(32, []);
    let mut big = DeviceMemory::new(128);
    gpu.launch(&program, &cfg, &mut big, &pool).unwrap();
    let mut small = DeviceMemory::new(64);
    let err = gpu.launch(&program, &cfg, &mut small, &pool).unwrap_err();
    assert!(matches!(&err, ExecError::Rejected(r) if r.rule == "bounds-oob"));
}
