//! Analyzer corpus: for every rule family, one kernel that fires the rule
//! and one near-miss that must stay silent. Keeping the near-misses green
//! is what keeps the analyzer usable — a rule that fires on the innocent
//! variant gets ignored in practice.

use rhythm_simt::ir::{
    BinOp, Block, MemSpace, Op, Program, ProgramBuilder, Reg, Terminator, Width,
};
use rhythm_verify::rules::rule_id;
use rhythm_verify::{verify_program, LaunchSpec, Report, Severity};

fn spec() -> LaunchSpec {
    LaunchSpec {
        lanes: 32,
        params: Some(vec![0; 4]),
        global_bytes: Some(4096),
        shared_bytes: Some(1024),
        local_bytes: Some(64),
        const_bytes: Some(256),
    }
}

fn lint(p: &Program) -> Report {
    verify_program(p, &spec())
}

fn fires(r: &Report, rule: &str) -> bool {
    r.diagnostics.iter().any(|d| d.rule == rule)
}

#[track_caller]
fn assert_fires(r: &Report, rule: &str) {
    assert!(fires(r, rule), "expected {rule} to fire; got:\n{r}");
}

#[track_caller]
fn assert_silent(r: &Report, rule: &str) {
    assert!(!fires(r, rule), "expected {rule} to stay silent; got:\n{r}");
}

// ---- divergence-exit-reconvergence ---------------------------------------

#[test]
fn divergence_exit_fires_on_branch_to_two_halts() {
    let mut b = ProgramBuilder::new("exit_reconverge");
    let lane = b.lane_id();
    let one = b.imm(1);
    let cond = b.bin(BinOp::And, lane, one);
    let (t, f) = (b.new_block("t"), b.new_block("f"));
    b.branch(cond, t, f);
    b.switch_to(t);
    b.halt();
    b.switch_to(f);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_fires(&r, rule_id::DIVERGENCE_EXIT);
}

#[test]
fn divergence_exit_silent_on_reconverging_diamond_and_uniform_branch() {
    // Lane-divergent, but reconverges at a join block: silent.
    let mut b = ProgramBuilder::new("diamond");
    let lane = b.lane_id();
    let one = b.imm(1);
    let cond = b.bin(BinOp::And, lane, one);
    b.if_then(cond, |b| {
        let _ = b.imm(7);
    });
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::DIVERGENCE_EXIT);

    // Uniform branch straight to two halts: no lanes diverge, silent.
    let mut b = ProgramBuilder::new("uniform_exit");
    let c = b.imm(1);
    let (t, f) = (b.new_block("t"), b.new_block("f"));
    b.branch(c, t, f);
    b.switch_to(t);
    b.halt();
    b.switch_to(f);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::DIVERGENCE_EXIT);
}

// ---- divergence-unbounded-loop -------------------------------------------

#[test]
fn unbounded_loop_fires_on_data_dependent_scan() {
    // while (load(p) != sentinel-from-memory): nothing compares against a
    // known bound, iteration count is pure data.
    let mut b = ProgramBuilder::new("scan");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    b.while_loop(
        |b| b.ld_global_word(addr, 0),
        |b| {
            let v = b.ld_global_word(addr, 0);
            let one = b.imm(1);
            let next = b.bin(BinOp::Sub, v, one);
            b.st_global_word(addr, 0, next);
        },
    );
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_fires(&r, rule_id::DIVERGENCE_UNBOUNDED_LOOP);
}

#[test]
fn unbounded_loop_silent_on_counted_loop_over_lane_data() {
    // `while (v != 0)` where the comparison is against a constant: the
    // classic bounded-countdown shape, lane-dependent but recognized.
    let mut b = ProgramBuilder::new("countdown");
    let lane = b.lane_id();
    let v = b.reg();
    b.mov(v, lane);
    b.while_loop(
        |b| {
            let zero = b.imm(0);
            b.bin(BinOp::Ne, v, zero)
        },
        |b| {
            let one = b.imm(1);
            b.bin_into(v, BinOp::Sub, v, one);
        },
    );
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::DIVERGENCE_UNBOUNDED_LOOP);
}

// ---- divergence-shared-scatter -------------------------------------------

#[test]
fn shared_scatter_fires_on_lane_hashed_shared_store() {
    let mut b = ProgramBuilder::new("shared_scatter");
    let lane = b.lane_id();
    let h = b.hash_u32(lane);
    let mask = b.imm(0xFC);
    let addr = b.bin(BinOp::And, h, mask);
    b.st(Width::Word, MemSpace::Shared, addr, 0, lane);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_fires(&r, rule_id::DIVERGENCE_SHARED_SCATTER);
}

#[test]
fn shared_scatter_silent_on_uniform_shared_access() {
    let mut b = ProgramBuilder::new("shared_uniform");
    let addr = b.imm(16);
    let v = b.imm(42);
    b.st(Width::Word, MemSpace::Shared, addr, 0, v);
    let _ = b.ld(Width::Word, MemSpace::Shared, addr, 0);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::DIVERGENCE_SHARED_SCATTER);
}

// ---- race-uniform-store --------------------------------------------------

#[test]
fn lost_update_is_an_error_and_rejects_the_program() {
    let mut b = ProgramBuilder::new("lost_update");
    let lane = b.lane_id();
    let addr = b.imm(0);
    b.st_global_word(addr, 0, lane);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_fires(&r, rule_id::RACE_UNIFORM_STORE);
    assert_eq!(r.worst(), Some(Severity::Error));
    assert!(!r.is_launchable());
}

#[test]
fn uniform_store_near_misses_stay_launchable() {
    // Same store, per-lane address: clean.
    let mut b = ProgramBuilder::new("per_lane_store");
    let lane = b.lane_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, lane, four);
    b.st_global_word(addr, 0, lane);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::RACE_UNIFORM_STORE);

    // Same address, atomic accumulate: the point of AtomicAdd; no lost
    // update (the coalescing lint may still mention serialization).
    let mut b = ProgramBuilder::new("atomic_accumulate");
    let lane = b.lane_id();
    let addr = b.imm(0);
    let _ = b.atomic_add(MemSpace::Global, addr, 0, lane);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::RACE_UNIFORM_STORE);
    assert!(r.is_launchable());

    // Same address, provably uniform value: redundant, not racy — Info.
    let mut b = ProgramBuilder::new("uniform_value");
    let addr = b.imm(0);
    let v = b.imm(7);
    b.st_global_word(addr, 0, v);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::RACE_UNIFORM_STORE);
    assert_fires(&r, rule_id::RACE_UNIFORM_STORE_UNIFORM_VALUE);
    assert!(r.is_launchable());
}

// ---- race-rw-conflict ----------------------------------------------------

#[test]
fn rw_conflict_fires_on_neighbour_lane_overlap() {
    // Lane i writes word [4i, 4i+4); lane i also reads [4i+4, 4i+8) —
    // i.e. reads the word lane i+1 is writing.
    let mut b = ProgramBuilder::new("neighbour_read");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    let v = b.ld_global_word(addr, 4);
    b.st_global_word(addr, 0, v);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_fires(&r, rule_id::RACE_RW_CONFLICT);
}

#[test]
fn rw_conflict_silent_on_disjoint_per_lane_slots() {
    // Each lane reads and writes only its own word.
    let mut b = ProgramBuilder::new("own_slot");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    let v = b.ld_global_word(addr, 0);
    let one = b.imm(1);
    let v1 = b.bin(BinOp::Add, v, one);
    b.st_global_word(addr, 0, v1);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::RACE_RW_CONFLICT);
}

// ---- bounds-oob ----------------------------------------------------------

#[test]
fn bounds_fires_on_word_straddling_buffer_end() {
    // 32 lanes * 4 bytes fills [0,128); a +1 byte offset makes lane 31's
    // word read bytes 125..129 — one past a 128-byte buffer.
    let mut b = ProgramBuilder::new("straddle");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    let _ = b.ld_global_word(addr, 1);
    b.halt();
    let mut s = spec();
    s.global_bytes = Some(128);
    let r = verify_program(&b.build().unwrap(), &s);
    assert!(
        r.diagnostics
            .iter()
            .any(|d| d.rule == rule_id::BOUNDS_OOB && d.severity == Severity::Error),
        "expected bounds-oob error, got:\n{r}"
    );
}

#[test]
fn bounds_silent_when_last_word_ends_exactly_at_extent() {
    let mut b = ProgramBuilder::new("snug");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    let _ = b.ld_global_word(addr, 0);
    b.halt();
    let mut s = spec();
    s.global_bytes = Some(128); // lane 31: bytes 124..128, in range
    let r = verify_program(&b.build().unwrap(), &s);
    assert_silent(&r, rule_id::BOUNDS_OOB);
}

// ---- bounds-missing-param ------------------------------------------------

#[test]
fn missing_param_fires_when_vector_is_short() {
    let mut b = ProgramBuilder::new("needs_p9");
    let p = b.param(9);
    let addr = b.imm(0);
    b.st_global_word(addr, 0, p);
    b.halt();
    let r = lint(&b.build().unwrap()); // spec supplies 4 params
    assert!(
        r.diagnostics
            .iter()
            .any(|d| d.rule == rule_id::BOUNDS_MISSING_PARAM && d.severity == Severity::Error),
        "expected missing-param error, got:\n{r}"
    );
}

#[test]
fn missing_param_silent_when_supplied_or_unknown() {
    let mut b = ProgramBuilder::new("needs_p3");
    let p = b.param(3);
    let addr = b.imm(0);
    b.st_global_word(addr, 0, p);
    b.halt();
    let prog = b.build().unwrap();
    let r = verify_program(&prog, &spec()); // 4 params: index 3 exists
    assert_silent(&r, rule_id::BOUNDS_MISSING_PARAM);
    // Unknown parameter vector: the rule cannot prove absence, stays quiet.
    let r = verify_program(&prog, &LaunchSpec::lanes(32));
    assert_silent(&r, rule_id::BOUNDS_MISSING_PARAM);
}

// ---- coalesce-strided-access ---------------------------------------------

#[test]
fn strided_access_fires_on_row_major_stride() {
    let mut b = ProgramBuilder::new("row_major");
    let gid = b.global_id();
    let stride = b.imm(64);
    let addr = b.bin(BinOp::Mul, gid, stride);
    let _ = b.ld_global_word(addr, 0);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_fires(&r, rule_id::COALESCE_STRIDED);
}

#[test]
fn strided_access_silent_on_unit_stride() {
    // A word access at 4 bytes/lane is exactly the coalesced shape.
    let mut b = ProgramBuilder::new("unit_stride");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    let v = b.ld_global_word(addr, 0);
    b.st_global_word(addr, 0, v);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::COALESCE_STRIDED);
    assert_silent(&r, rule_id::COALESCE_OPAQUE);
}

// ---- coalesce-atomic-serial ----------------------------------------------

#[test]
fn atomic_serial_fires_on_shared_counter() {
    let mut b = ProgramBuilder::new("one_counter");
    let addr = b.imm(0);
    let one = b.imm(1);
    let _ = b.atomic_add(MemSpace::Global, addr, 0, one);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_fires(&r, rule_id::COALESCE_ATOMIC_SERIAL);
}

#[test]
fn atomic_serial_silent_on_per_lane_histogram_bins() {
    let mut b = ProgramBuilder::new("per_lane_bins");
    let lane = b.lane_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, lane, four);
    let one = b.imm(1);
    let _ = b.atomic_add(MemSpace::Global, addr, 0, one);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::COALESCE_ATOMIC_SERIAL);
}

// ---- hygiene -------------------------------------------------------------

fn raw_block(ops: Vec<Op>, term: Terminator) -> Block {
    Block {
        label: None,
        ops,
        term,
    }
}

#[test]
fn use_before_def_fires_on_zero_fill_read() {
    // r1 = r0 + r0 with r0 never written: reads the register file's
    // zero fill. The builder can't express this; build the IR directly.
    let p = Program::from_parts(
        "zero_fill",
        vec![raw_block(
            vec![
                Op::Bin {
                    op: BinOp::Add,
                    dst: Reg(1),
                    a: Reg(0),
                    b: Reg(0),
                },
                Op::St {
                    space: MemSpace::Global,
                    width: Width::Word,
                    addr: Reg(1),
                    offset: 0,
                    src: Reg(1),
                },
            ],
            Terminator::Halt,
        )],
        2,
        0,
    )
    .unwrap();
    let r = lint(&p);
    assert_fires(&r, rule_id::HYGIENE_USE_BEFORE_DEF);
}

#[test]
fn use_before_def_silent_when_defined_on_all_paths() {
    let mut b = ProgramBuilder::new("all_paths");
    let lane = b.lane_id();
    let one = b.imm(1);
    let cond = b.bin(BinOp::And, lane, one);
    let v = b.reg();
    b.if_then_else(cond, |b| b.imm_into(v, 10), |b| b.imm_into(v, 20));
    let four = b.imm(4);
    let gid = b.global_id();
    let addr = b.bin(BinOp::Mul, gid, four);
    b.st_global_word(addr, 0, v);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::HYGIENE_USE_BEFORE_DEF);
}

#[test]
fn unreachable_block_fires_and_reachable_program_is_silent() {
    let p = Program::from_parts(
        "island",
        vec![
            raw_block(vec![], Terminator::Jmp(2)),
            raw_block(vec![], Terminator::Jmp(2)), // no predecessors
            raw_block(vec![], Terminator::Halt),
        ],
        1,
        0,
    )
    .unwrap();
    let r = lint(&p);
    assert!(
        r.diagnostics
            .iter()
            .any(|d| d.rule == rule_id::HYGIENE_UNREACHABLE && d.block == Some(1)),
        "expected bb1 unreachable, got:\n{r}"
    );

    let mut b = ProgramBuilder::new("linear");
    let v = b.imm(1);
    let addr = b.imm(0);
    let _ = b.atomic_add(MemSpace::Global, addr, 0, v);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::HYGIENE_UNREACHABLE);
}

#[test]
fn dead_store_fires_on_unused_pure_value_and_not_on_used_one() {
    let mut b = ProgramBuilder::new("dead");
    let _unused = b.imm(99);
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    b.st_global_word(addr, 0, gid);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_fires(&r, rule_id::HYGIENE_DEAD_STORE);

    let mut b = ProgramBuilder::new("live");
    let v = b.imm(99);
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    b.st_global_word(addr, 0, v);
    b.halt();
    let r = lint(&b.build().unwrap());
    assert_silent(&r, rule_id::HYGIENE_DEAD_STORE);
}
