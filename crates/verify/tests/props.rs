//! Property: programs the analyzer admits actually behave. Random
//! structured kernels that lint clean (no `Error` findings) execute
//! bit-identically on the scalar reference executor and the SIMT executor
//! at several worker counts — i.e. the gate's admission criterion never
//! admits a kernel whose parallel execution diverges from its sequential
//! semantics.

use proptest::prelude::*;

use rhythm_simt::exec::scalar::{execute_scalar, ScalarRun};
use rhythm_simt::exec::simt::execute_simt_workers;
use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::ir::{BinOp, Program, ProgramBuilder, Reg};
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_verify::{verify_program, LaunchSpec};

const LANES: u32 = 32;
const MEM_BYTES: usize = LANES as usize * 4;

/// A random structured kernel over per-lane slots: each step mutates an
/// accumulator (arithmetic, branches on its parity, short counted loops)
/// and the kernel ends by storing the accumulator to the lane's own word.
/// Memory-safe and race-free by construction, so it should lint clean —
/// which the property asserts rather than assumes.
fn build_kernel(seed: u32, steps: &[u8]) -> Program {
    let mut b = ProgramBuilder::new("random_clean");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    let acc = b.reg();
    let s = b.imm(seed | 1);
    b.bin_into(acc, BinOp::Mul, gid, s);
    for &step in steps {
        apply_step(&mut b, acc, step);
    }
    b.st_global_word(addr, 0, acc);
    b.halt();
    b.build().expect("builder emits valid programs")
}

fn apply_step(b: &mut ProgramBuilder, acc: Reg, step: u8) {
    match step % 6 {
        0 => {
            let c = b.imm(0x9E37_79B9);
            b.bin_into(acc, BinOp::Add, acc, c);
        }
        1 => {
            let c = b.imm((step as u32).wrapping_mul(2654435761) | 1);
            b.bin_into(acc, BinOp::Mul, acc, c);
        }
        2 => {
            let one = b.imm(1);
            let parity = b.bin(BinOp::And, acc, one);
            b.if_then(parity, |b| {
                let c = b.imm(0x5bd1);
                b.bin_into(acc, BinOp::Xor, acc, c);
            });
        }
        3 => {
            let one = b.imm(1);
            let parity = b.bin(BinOp::And, acc, one);
            b.if_then_else(
                parity,
                |b| {
                    let c = b.imm(3);
                    b.bin_into(acc, BinOp::Mul, acc, c);
                },
                |b| {
                    let c = b.imm(7);
                    b.bin_into(acc, BinOp::Add, acc, c);
                },
            );
        }
        4 => {
            let n = b.imm((step as u32 % 3) + 1);
            b.for_loop(n, |b, i| {
                b.bin_into(acc, BinOp::Add, acc, i);
            });
        }
        _ => {
            let sh = b.imm(step as u32 % 31);
            let rot = b.bin(BinOp::Shl, acc, sh);
            b.bin_into(acc, BinOp::Xor, acc, rot);
        }
    }
}

proptest! {
    #[test]
    fn lint_clean_kernels_execute_identically_at_all_worker_counts(
        seed in any::<u32>(),
        steps in prop::collection::vec(any::<u8>(), 1..10),
    ) {
        let program = build_kernel(seed, &steps);

        // The admission criterion the Verifier gate applies.
        let mut spec = LaunchSpec::lanes(LANES);
        spec.params = Some(vec![]);
        spec.global_bytes = Some(MEM_BYTES as u64);
        let report = verify_program(&program, &spec);
        prop_assert!(
            report.is_launchable(),
            "constructively safe kernel flagged with errors:\n{}",
            report
        );

        // Scalar reference: one lane at a time.
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(LANES, vec![]);
        let mut reference = DeviceMemory::new(MEM_BYTES);
        let scalar_cfg = LaunchConfig::new(1, vec![]);
        for id in 0..LANES {
            execute_scalar(
                &ScalarRun::new(&program, id),
                &scalar_cfg,
                &mut reference,
                &pool,
                None,
            )
            .unwrap();
        }

        for workers in [1usize, 2, 4] {
            let mut mem = DeviceMemory::new(MEM_BYTES);
            execute_simt_workers(&program, &cfg, &mut mem, &pool, workers).unwrap();
            prop_assert_eq!(
                mem.as_bytes(),
                reference.as_bytes(),
                "SIMT({} workers) diverged from scalar reference",
                workers
            );
        }
    }
}
