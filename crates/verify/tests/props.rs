//! Property: programs the analyzer admits actually behave. Random
//! structured kernels that lint clean (no `Error` findings) execute
//! bit-identically on the scalar reference executor and the SIMT executor
//! at several worker counts — i.e. the gate's admission criterion never
//! admits a kernel whose parallel execution diverges from its sequential
//! semantics.

use proptest::prelude::*;

use rhythm_simt::exec::scalar::{execute_scalar, ScalarRun};
use rhythm_simt::exec::simt::execute_simt_workers;
use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_verify::corpus::build_kernel;
use rhythm_verify::{verify_program, LaunchSpec};

const LANES: u32 = 32;
const MEM_BYTES: usize = LANES as usize * 4;

proptest! {
    #[test]
    fn lint_clean_kernels_execute_identically_at_all_worker_counts(
        seed in any::<u32>(),
        steps in prop::collection::vec(any::<u8>(), 1..10),
    ) {
        let program = build_kernel(seed, &steps);

        // The admission criterion the Verifier gate applies.
        let mut spec = LaunchSpec::lanes(LANES);
        spec.params = Some(vec![]);
        spec.global_bytes = Some(MEM_BYTES as u64);
        let report = verify_program(&program, &spec);
        prop_assert!(
            report.is_launchable(),
            "constructively safe kernel flagged with errors:\n{}",
            report
        );

        // Scalar reference: one lane at a time.
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(LANES, []);
        let mut reference = DeviceMemory::new(MEM_BYTES);
        let scalar_cfg = LaunchConfig::new(1, []);
        for id in 0..LANES {
            execute_scalar(
                &ScalarRun::new(&program, id),
                &scalar_cfg,
                &mut reference,
                &pool,
                None,
            )
            .unwrap();
        }

        for workers in [1usize, 2, 4] {
            let mut mem = DeviceMemory::new(MEM_BYTES);
            execute_simt_workers(&program, &cfg, &mut mem, &pool, workers).unwrap();
            prop_assert_eq!(
                mem.as_bytes(),
                reference.as_bytes(),
                "SIMT({} workers) diverged from scalar reference",
                workers
            );
        }
    }
}
