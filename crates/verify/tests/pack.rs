//! Packing-legality analysis: [`pack_width`] endorses full sub-warp
//! packing only for kernels with no atomics and no cross-lane write
//! hazards, reusing the race rules as the legality oracle.

use rhythm_simt::ir::{BinOp, MemSpace, Program, ProgramBuilder};
use rhythm_verify::{pack_width, pack_width_cached, verify_program, LaunchSpec};

fn spec() -> LaunchSpec {
    LaunchSpec::lanes(64)
}

/// Lane-distinct stores to disjoint addresses: the cohort shape, fully
/// packable.
fn clean_kernel() -> Program {
    let mut b = ProgramBuilder::new("clean");
    let gid = b.global_id();
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    b.st_global_word(addr, 0, gid);
    b.halt();
    b.build().unwrap()
}

#[test]
fn clean_kernel_packs_wide() {
    let p = clean_kernel();
    assert_eq!(pack_width(&p, &spec()), 4);
    // Memoized path agrees, twice (second hit comes from the cache).
    assert_eq!(pack_width_cached(&p, &spec()), 4);
    assert_eq!(pack_width_cached(&p, &spec()), 4);
}

#[test]
fn atomics_block_packing() {
    let mut b = ProgramBuilder::new("counter");
    let zero = b.imm(0);
    let one = b.imm(1);
    b.atomic_add(MemSpace::Global, zero, 0, one);
    b.halt();
    let p = b.build().unwrap();
    assert_eq!(pack_width(&p, &spec()), 1);
    assert_eq!(pack_width_cached(&p, &spec()), 1);
}

#[test]
fn uniform_store_race_blocks_packing() {
    // Lane-distinct values through one address: a lost-update race, and
    // therefore no packing endorsement either.
    let mut b = ProgramBuilder::new("lost_update");
    let lane = b.lane_id();
    let addr = b.imm(0);
    b.st_global_word(addr, 0, lane);
    b.halt();
    let p = b.build().unwrap();
    let report = verify_program(&p, &spec());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == "race-uniform-store"));
    assert_eq!(pack_width(&p, &spec()), 1);
}

#[test]
fn uniform_value_broadcast_still_packs() {
    // All lanes store the same constant through one address: benign
    // (value-identical in any order), flagged only as info, and packable.
    let mut b = ProgramBuilder::new("broadcast");
    let addr = b.imm(0);
    let v = b.imm(7);
    b.st_global_word(addr, 0, v);
    b.halt();
    let p = b.build().unwrap();
    let report = verify_program(&p, &spec());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == "race-uniform-store-uniform-value"));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.rule == "race-uniform-store"));
    assert_eq!(pack_width(&p, &spec()), 4);
}
