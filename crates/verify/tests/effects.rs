//! Effect-summary engine: corpus verdicts, the `interferes` oracle, lint
//! rules, Verifier caching, and the soundness property the whole tentpole
//! rests on — every executed global access of a lint-clean kernel lies
//! inside its inferred footprint, with the runtime sanitizer as oracle.

use std::sync::Arc;

use proptest::prelude::*;

use rhythm_simt::exec::simt::execute_simt_workers;
use rhythm_simt::exec::{AccessKind, FootprintSpec, LaunchConfig};
use rhythm_simt::gpu::{Gpu, GpuConfig};
use rhythm_simt::ir::MemSpace;
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_simt::ExecError;
use rhythm_verify::corpus::{build_kernel, data_dependent_writer, strided_writer};
use rhythm_verify::effects::{effect_lints, infer_effects, interferes, RegionMap};
use rhythm_verify::rules::rule_id;
use rhythm_verify::{verify_program, LaunchSpec, Severity, Verifier};

const LANES: u32 = 32;
const MEM_BYTES: usize = LANES as usize * 4;

fn spec_with(lanes: u32, global: u64) -> LaunchSpec {
    let mut s = LaunchSpec::lanes(lanes);
    s.params = Some(vec![]);
    s.global_bytes = Some(global);
    s
}

#[test]
fn strided_writer_summary_is_exact_and_closed() {
    let p = strided_writer("w", 4, 128);
    let fx = infer_effects(&p, &spec_with(8, 4096), &RegionMap::default());
    let g = fx.space(MemSpace::Global);
    let w = g.writes.regions().expect("non-top");
    assert_eq!(w.len(), 1);
    assert_eq!((w[0].lo, w[0].hi), (128, 128 + 4 * 7 + 4));
    assert!(w[0].exact);
    assert_eq!(w[0].gid_stride, 4);
    assert!(g.reads.is_empty());
    assert!(g.atomics.is_empty());
    assert!(effect_lints(&p, &spec_with(8, 4096), &RegionMap::default()).is_empty());
}

#[test]
fn interferes_separates_disjoint_from_overlapping_writer_pairs() {
    let s = spec_with(8, 4096);
    let rm = RegionMap::default();
    // a writes [0, 32), b writes [256, 288): disjoint.
    let a = infer_effects(&strided_writer("a", 4, 0), &s, &rm);
    let b = infer_effects(&strided_writer("b", 4, 256), &s, &rm);
    assert!(!interferes(&a, &b));
    // c writes [16, 48): overlaps a.
    let c = infer_effects(&strided_writer("c", 4, 16), &s, &rm);
    assert!(interferes(&a, &c));
    // A ⊤ writer interferes with any non-empty footprint.
    let top = infer_effects(&data_dependent_writer(), &LaunchSpec::lanes(8), &rm);
    assert!(top.space(MemSpace::Global).writes.is_top());
    assert!(interferes(&top, &a));
}

#[test]
fn data_dependent_writer_tops_without_anchor_and_lints() {
    let p = data_dependent_writer();
    let spec = LaunchSpec::lanes(8); // no extent, no regions
    let fx = infer_effects(&p, &spec, &RegionMap::default());
    assert!(fx.is_top_anywhere());
    let lints = effect_lints(&p, &spec, &RegionMap::default());
    assert!(lints
        .iter()
        .any(|d| d.rule == rule_id::EFFECTS_TOP && d.severity == Severity::Warning));

    // Anchored to a declared region: claimed, not ⊤, and no lint fires.
    let rm = RegionMap::new(vec![(0, 4096)]);
    let fx = infer_effects(&p, &spec_with(8, 65536), &rm);
    assert!(!fx.is_top_anywhere());
    assert!(fx.space(MemSpace::Global).writes.has_claimed());
    assert!(effect_lints(&p, &spec_with(8, 65536), &rm).is_empty());
}

#[test]
fn out_of_extent_exact_region_is_an_error() {
    // 8 lanes · stride 4 + offset 64 ends at 96 > extent 64.
    let p = strided_writer("oob", 4, 64);
    let lints = effect_lints(&p, &spec_with(8, 64), &RegionMap::default());
    assert!(lints
        .iter()
        .any(|d| d.rule == rule_id::EFFECTS_OOB && d.severity == Severity::Error));
}

#[test]
fn verifier_caches_effect_summaries_by_fingerprint() {
    let v = Verifier::new();
    let p = strided_writer("cached", 4, 0);
    let s = spec_with(8, 4096);
    let rm = RegionMap::new(vec![(0, 1024)]);
    let first = v.effects(&p, &s, &rm);
    let second = v.effects(&p, &s, &rm);
    assert!(
        Arc::ptr_eq(&first, &second),
        "second query must be a cache hit"
    );
    // A different environment is a distinct entry.
    let other = v.effects(&p, &spec_with(16, 4096), &rm);
    assert!(!Arc::ptr_eq(&first, &other));
}

#[test]
fn sanitizer_trips_loudly_on_a_wrong_claim() {
    // Claim only [0, 16) writable, then write [0, 128): lane 4's store at
    // address 16 escapes and must fail the launch with the exact access.
    let p = strided_writer("escapee", 4, 0);
    let mut cfg = LaunchConfig::new(LANES, []);
    cfg.sanitize = Some(Arc::new(FootprintSpec::new(
        Some(vec![]),
        Some(vec![(0, 16)]),
        Some(vec![]),
    )));
    let mut mem = DeviceMemory::new(MEM_BYTES);
    let err = execute_simt_workers(&p, &cfg, &mut mem, &ConstPool::new(), 1).unwrap_err();
    assert_eq!(
        err,
        ExecError::FootprintEscape {
            kind: AccessKind::Write,
            addr: 16,
            width: 4
        }
    );
}

#[test]
fn strict_device_rejects_unsanitized_launches() {
    let gpu = Gpu::new(GpuConfig::gtx_titan().with_sanitize(true));
    let p = strided_writer("strict", 4, 0);
    let mut mem = DeviceMemory::new(MEM_BYTES);
    let pool = ConstPool::new();
    let err = gpu
        .launch(&p, &LaunchConfig::new(LANES, []), &mut mem, &pool)
        .unwrap_err();
    let ExecError::Rejected(r) = err else {
        panic!("expected strict-mode rejection, got {err:?}");
    };
    assert_eq!(r.rule, "sanitize-missing-footprint");

    // The same launch with a claimed footprint is admitted.
    let fx = infer_effects(
        &p,
        &spec_with(LANES, MEM_BYTES as u64),
        &RegionMap::default(),
    );
    let mut cfg = LaunchConfig::new(LANES, []);
    cfg.sanitize = Some(Arc::new(fx.footprint_spec()));
    gpu.launch(&p, &cfg, &mut mem, &pool)
        .expect("sanitized launch admitted");
}

proptest! {
    /// Soundness: for lint-clean random kernels, every executed global
    /// access lies inside the inferred footprint — checked by running the
    /// sanitizer as the oracle over workers {1,2,4} × pack {1,4} and
    /// asserting both zero escapes and bit-identical memory against the
    /// unsanitized run.
    #[test]
    fn executed_accesses_stay_inside_inferred_footprint(
        seed in any::<u32>(),
        steps in prop::collection::vec(any::<u8>(), 1..10),
    ) {
        let program = build_kernel(seed, &steps);
        let spec = spec_with(LANES, MEM_BYTES as u64);
        prop_assert!(verify_program(&program, &spec).is_launchable());

        let fx = infer_effects(&program, &spec, &RegionMap::default());
        let footprint = Arc::new(fx.footprint_spec());
        let pool = ConstPool::new();

        let mut reference = DeviceMemory::new(MEM_BYTES);
        execute_simt_workers(&program, &LaunchConfig::new(LANES, []), &mut reference, &pool, 1)
            .unwrap();

        for workers in [1usize, 2, 4] {
            for pack in [1u32, 4] {
                let mut cfg = LaunchConfig::new(LANES, []);
                cfg.pack = pack;
                cfg.sanitize = Some(Arc::clone(&footprint));
                let mut mem = DeviceMemory::new(MEM_BYTES);
                let res = execute_simt_workers(&program, &cfg, &mut mem, &pool, workers);
                prop_assert!(
                    res.is_ok(),
                    "footprint escape at workers={workers} pack={pack}: {:?}",
                    res.err()
                );
                prop_assert_eq!(mem.as_bytes(), reference.as_bytes());
            }
        }
    }
}
