//! Pipeline run metrics: throughput, latency distribution, occupancy.

use serde::{Deserialize, Serialize};

/// Summary statistics over a latency sample.
#[derive(Clone, Default, PartialEq, Debug, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Sample count.
    pub count: u64,
    /// Mean latency (seconds).
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencyStats {
    /// Compute from raw samples (empty samples give zeroes).
    ///
    /// NaN samples carry no ordering information and are filtered out up
    /// front — the statistics describe the remaining samples. (The old
    /// implementation panicked from inside the sort comparator, leaving
    /// the vector half-sorted in the unwind; validating before sorting
    /// gives a well-defined result instead.)
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|s| !s.is_nan());
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let count = samples.len() as u64;
        let mean = samples.iter().sum::<f64>() / count as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((p / 100.0) * (count as f64 - 1.0)).round() as usize;
            samples[idx.min(samples.len() - 1)]
        };
        LatencyStats {
            count,
            mean,
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
            max: *samples.last().expect("nonempty"),
        }
    }
}

/// Result of one pipeline simulation run.
#[derive(Clone, Default, PartialEq, Debug, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Requests completed (responses sent).
    pub completed: u64,
    /// Virtual time of the last completion.
    pub makespan_s: f64,
    /// End-to-end request latency statistics.
    pub latency: LatencyStats,
    /// Cohorts launched.
    pub cohorts_launched: u64,
    /// Cohorts launched due to formation timeout (not full).
    pub timeout_launches: u64,
    /// Mean cohort fill at launch (1.0 = always full).
    pub mean_fill: f64,
    /// Dispatch stalls: requests that waited because no Free cohort
    /// context was available (structural hazard).
    pub dispatch_stalls: u64,
    /// Device kernels launched (parse + process stages).
    pub kernels_launched: u64,
    /// Peak number of kernels queued waiting for a device slot.
    pub device_queue_peak: u64,
    /// Peak reader buffer depth.
    pub reader_peak: u64,
}

impl PipelineReport {
    /// Completed requests per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan_s == 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_are_zero() {
        let s = LatencyStats::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn percentiles_ordered() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(samples);
        assert_eq!(s.count, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert_eq!(s.max, 1000.0);
        assert!((s.p50 - 500.0).abs() <= 1.0);
    }

    /// NaN samples are dropped before sorting instead of panicking from
    /// inside the sort comparator; the statistics cover what remains.
    #[test]
    fn nan_samples_filtered_not_panicking() {
        let s = LatencyStats::from_samples(vec![3.0, f64::NAN, 1.0, f64::NAN, 2.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(!s.p50.is_nan() && !s.p95.is_nan() && !s.p99.is_nan());

        // All-NaN degenerates to the empty result, not a panic.
        let s = LatencyStats::from_samples(vec![f64::NAN, f64::NAN]);
        assert_eq!(s, LatencyStats::default());
    }

    #[test]
    fn single_sample_statistics() {
        let s = LatencyStats::from_samples(vec![7.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.p50, 7.5);
        assert_eq!(s.p95, 7.5);
        assert_eq!(s.p99, 7.5);
        assert_eq!(s.max, 7.5);
    }

    #[test]
    fn throughput_guarding_zero_time() {
        let r = PipelineReport::default();
        assert_eq!(r.throughput(), 0.0);
        let r = PipelineReport {
            completed: 100,
            makespan_s: 2.0,
            ..Default::default()
        };
        assert_eq!(r.throughput(), 50.0);
    }
}
