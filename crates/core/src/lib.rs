//! # rhythm-core
//!
//! The Rhythm cohort-scheduling pipeline (paper §3–4): an event-driven,
//! single-threaded server architecture that delays and batches similar
//! requests into **cohorts** and launches each cohort as a data-parallel
//! kernel.
//!
//! * [`cohort`] — cohort contexts, the Free → PartiallyFull → Full → Busy
//!   FSM, and the preallocated context pool;
//! * [`events`] — the deterministic virtual-time event queue standing in
//!   for the prototype's epoll/callback polling loop;
//! * [`service`] — the latency-model abstraction a workload plugs in
//!   (calibrate it from real kernel measurements, as `rhythm-bench` does
//!   with the banking workload);
//! * [`pipeline`] — the five-stage Reader/Parser/Dispatch/Process/Response
//!   pipeline as a discrete-event simulation with formation timeouts,
//!   double-buffered reading, device-slot (HyperQ) modelling and
//!   structural-hazard stalls;
//! * [`metrics`] — throughput/latency/occupancy reporting.
//!
//! ```
//! use rhythm_core::pipeline::{uniform_arrivals, Pipeline, PipelineConfig};
//! use rhythm_core::service::TableService;
//!
//! let config = PipelineConfig {
//!     cohort_size: 64,
//!     read_batch: 64,
//!     ..Default::default()
//! };
//! let pipeline = Pipeline::new(TableService::uniform(2, 2), config);
//! let arrivals = uniform_arrivals(1024, 1_000_000.0, &[0, 1]);
//! let report = pipeline.run(&arrivals);
//! assert_eq!(report.completed, 1024);
//! println!("throughput: {:.0} req/s, mean latency {:.2} ms",
//!          report.throughput(), report.latency.mean * 1e3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cohort;
pub mod events;
pub mod metrics;
pub mod pipeline;
pub mod service;

pub use cohort::{CohortContext, CohortError, CohortPool, CohortRejected, CohortState, ContextId};
pub use metrics::{LatencyStats, PipelineReport};
pub use pipeline::{Pipeline, PipelineConfig};
pub use service::{Service, TableService};
