//! The service abstraction: per-stage cohort latencies.
//!
//! `rhythm-core` is workload-agnostic: the pipeline schedules cohorts and
//! charges virtual time, while a [`Service`] supplies the latency of each
//! kernel/backend step — typically calibrated from real kernel
//! measurements on the SIMT engine (as `rhythm-bench` does with the
//! banking workload), or synthetic for tests.

/// Latency model for one service (workload).
pub trait Service {
    /// Process-stage count for cohort key `key` (≥ 1; the last stage is
    /// response generation).
    fn stages(&self, key: u32) -> u32;

    /// Device latency of the parser kernel over a read batch.
    fn parse_latency(&self, batch: u32) -> f64;

    /// Device latency of process stage `stage` for a cohort of `cohort`
    /// requests of `key`.
    fn stage_latency(&self, key: u32, stage: u32, cohort: u32) -> f64;

    /// Backend access latency after stage `stage` (zero when the backend
    /// is folded into a device stage).
    fn backend_latency(&self, key: u32, stage: u32, cohort: u32) -> f64;

    /// Post-process latency (response transpose/copy/send) that does not
    /// occupy the device.
    fn response_latency(&self, key: u32, cohort: u32) -> f64;
}

/// A table-driven [`Service`] for tests and analytic studies: constant
/// per-request costs, scaled linearly with cohort size.
#[derive(Clone, Debug)]
pub struct TableService {
    /// Stage count per key (`keys.len()` keys).
    pub stage_counts: Vec<u32>,
    /// Per-request parse cost (seconds).
    pub parse_per_req: f64,
    /// Per-request per-stage process cost (seconds).
    pub stage_per_req: f64,
    /// Fixed backend latency (seconds).
    pub backend_fixed: f64,
    /// Fixed response-send latency (seconds).
    pub response_fixed: f64,
    /// Fixed kernel launch overhead added to every device stage.
    pub launch_overhead: f64,
}

impl TableService {
    /// A service with `keys` cohort keys, each with `stages` stages.
    pub fn uniform(keys: u32, stages: u32) -> Self {
        TableService {
            stage_counts: vec![stages; keys as usize],
            parse_per_req: 50e-9,
            stage_per_req: 500e-9,
            backend_fixed: 20e-6,
            response_fixed: 10e-6,
            launch_overhead: 5e-6,
        }
    }
}

impl Service for TableService {
    fn stages(&self, key: u32) -> u32 {
        self.stage_counts[key as usize]
    }

    fn parse_latency(&self, batch: u32) -> f64 {
        self.launch_overhead + self.parse_per_req * batch as f64
    }

    fn stage_latency(&self, _key: u32, _stage: u32, cohort: u32) -> f64 {
        self.launch_overhead + self.stage_per_req * cohort as f64
    }

    fn backend_latency(&self, _key: u32, _stage: u32, _cohort: u32) -> f64 {
        self.backend_fixed
    }

    fn response_latency(&self, _key: u32, _cohort: u32) -> f64 {
        self.response_fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_service_scales_linearly() {
        let s = TableService::uniform(3, 2);
        assert_eq!(s.stages(1), 2);
        let l1 = s.stage_latency(0, 0, 100);
        let l2 = s.stage_latency(0, 0, 200);
        assert!(l2 > l1);
        assert!((l2 - l1 - 100.0 * s.stage_per_req).abs() < 1e-12);
        assert!(s.parse_latency(64) > s.parse_latency(1));
    }
}
