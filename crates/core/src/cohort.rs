//! Cohort contexts, their lifecycle FSM, and the cohort pool (paper §3.1
//! "Cohort Management").
//!
//! A cohort context tracks one batch of same-type requests:
//!
//! ```text
//! Free ──add──▶ PartiallyFull ──fill/timeout──▶ Busy ──responses sent──▶ Free
//! ```
//!
//! Contexts are preallocated in a fixed-size [`CohortPool`] (the paper
//! implements the pool as static arrays to avoid allocation and
//! synchronization overheads); running out of Free contexts is a
//! structural hazard that stalls the pipeline.

use std::fmt;

/// Lifecycle state of a cohort context.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CohortState {
    /// Unused; may be claimed to form a new cohort.
    Free,
    /// Has at least one request and is accumulating more.
    PartiallyFull,
    /// Reached the target size; ready to launch.
    Full,
    /// Executing in the process pipeline.
    Busy,
}

/// Identifier of a context within its pool.
pub type ContextId = u32;

/// One cohort context.
#[derive(Clone, Debug)]
pub struct CohortContext<R> {
    id: ContextId,
    state: CohortState,
    key: u32,
    members: Vec<R>,
    capacity: usize,
    opened_at: f64,
}

impl<R> CohortContext<R> {
    fn new(id: ContextId, capacity: usize) -> Self {
        CohortContext {
            id,
            state: CohortState::Free,
            key: 0,
            members: Vec::with_capacity(capacity),
            capacity,
            opened_at: 0.0,
        }
    }

    /// Context id within the pool.
    pub fn id(&self) -> ContextId {
        self.id
    }

    /// Current FSM state.
    pub fn state(&self) -> CohortState {
        self.state
    }

    /// The cohort key (request type) this context accumulates.
    pub fn key(&self) -> u32 {
        self.key
    }

    /// Requests currently in the cohort.
    pub fn members(&self) -> &[R] {
        &self.members
    }

    /// Time the first request was added (for timeout accounting).
    pub fn opened_at(&self) -> f64 {
        self.opened_at
    }

    /// Occupancy as a fraction of capacity.
    pub fn fill(&self) -> f64 {
        self.members.len() as f64 / self.capacity as f64
    }

    /// Add a request.
    ///
    /// # Panics
    ///
    /// Panics if the context is Busy or already Full, or if a request of
    /// the wrong key is added to a non-empty context.
    pub fn add(&mut self, request: R, key: u32, now: f64) {
        match self.state {
            CohortState::Free => {
                self.state = CohortState::PartiallyFull;
                self.key = key;
                self.opened_at = now;
            }
            CohortState::PartiallyFull => {
                assert_eq!(self.key, key, "cohort key mismatch");
            }
            s => panic!("cannot add to cohort in state {s:?}"),
        }
        self.members.push(request);
        if self.members.len() >= self.capacity {
            self.state = CohortState::Full;
        }
    }

    /// Transition to Busy (launch), whether Full or timed out while
    /// PartiallyFull.
    ///
    /// # Panics
    ///
    /// Panics unless the context is PartiallyFull or Full.
    pub fn launch(&mut self) {
        assert!(
            matches!(self.state, CohortState::PartiallyFull | CohortState::Full),
            "cannot launch a cohort in state {:?}",
            self.state
        );
        self.state = CohortState::Busy;
    }

    /// Responses sent: drain the members and return to Free.
    ///
    /// # Panics
    ///
    /// Panics unless the context is Busy.
    pub fn release(&mut self) -> Vec<R> {
        assert_eq!(self.state, CohortState::Busy, "release requires Busy");
        self.state = CohortState::Free;
        self.key = 0;
        std::mem::take(&mut self.members)
    }
}

/// Fixed pool of cohort contexts.
pub struct CohortPool<R> {
    contexts: Vec<CohortContext<R>>,
}

impl<R> fmt::Debug for CohortPool<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CohortPool")
            .field("contexts", &self.contexts.len())
            .field("free", &self.free_count())
            .finish()
    }
}

impl<R> CohortPool<R> {
    /// Preallocate `count` contexts of `capacity` requests each.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `capacity` is zero.
    pub fn new(count: u32, capacity: usize) -> Self {
        assert!(count > 0, "pool needs at least one context");
        assert!(capacity > 0, "cohort capacity must be nonzero");
        CohortPool {
            contexts: (0..count)
                .map(|i| CohortContext::new(i, capacity))
                .collect(),
        }
    }

    /// Total contexts.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// A pool is never empty (construction enforces it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Contexts currently Free.
    pub fn free_count(&self) -> usize {
        self.contexts
            .iter()
            .filter(|c| c.state == CohortState::Free)
            .count()
    }

    /// Borrow a context.
    pub fn get(&self, id: ContextId) -> &CohortContext<R> {
        &self.contexts[id as usize]
    }

    /// Mutably borrow a context.
    pub fn get_mut(&mut self, id: ContextId) -> &mut CohortContext<R> {
        &mut self.contexts[id as usize]
    }

    /// The open (PartiallyFull) context accumulating `key`, if any.
    pub fn open_for(&self, key: u32) -> Option<ContextId> {
        self.contexts
            .iter()
            .find(|c| c.state == CohortState::PartiallyFull && c.key == key)
            .map(|c| c.id)
    }

    /// Claim a Free context (does not change its state; the first `add`
    /// transitions it).
    pub fn acquire(&mut self) -> Option<ContextId> {
        self.contexts
            .iter()
            .find(|c| c.state == CohortState::Free)
            .map(|c| c.id)
    }

    /// All context states (for metrics).
    pub fn states(&self) -> Vec<CohortState> {
        self.contexts.iter().map(|c| c.state).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_free_partial_full_busy_free() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 2);
        assert_eq!(c.state(), CohortState::Free);
        c.add(10, 3, 1.0);
        assert_eq!(c.state(), CohortState::PartiallyFull);
        assert_eq!(c.opened_at(), 1.0);
        assert_eq!(c.key(), 3);
        c.add(11, 3, 1.5);
        assert_eq!(c.state(), CohortState::Full);
        c.launch();
        assert_eq!(c.state(), CohortState::Busy);
        let members = c.release();
        assert_eq!(members, vec![10, 11]);
        assert_eq!(c.state(), CohortState::Free);
        assert!(c.members().is_empty());
    }

    #[test]
    fn timeout_launch_from_partially_full() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 8);
        c.add(1, 0, 0.0);
        assert_eq!(c.fill(), 1.0 / 8.0);
        c.launch();
        assert_eq!(c.state(), CohortState::Busy);
    }

    #[test]
    #[should_panic(expected = "cohort key mismatch")]
    fn mixed_keys_rejected() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 4);
        c.add(1, 0, 0.0);
        c.add(2, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot add to cohort")]
    fn add_to_busy_rejected() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 1);
        c.add(1, 0, 0.0);
        c.launch();
        c.add(2, 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot launch")]
    fn launch_free_rejected() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 1);
        c.launch();
    }

    #[test]
    #[should_panic(expected = "release requires Busy")]
    fn release_non_busy_rejected() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 1);
        c.release();
    }

    #[test]
    fn pool_acquire_and_open_for() {
        let mut pool: CohortPool<u32> = CohortPool::new(2, 4);
        assert_eq!(pool.free_count(), 2);
        assert_eq!(pool.open_for(7), None);
        let id = pool.acquire().unwrap();
        pool.get_mut(id).add(1, 7, 0.0);
        assert_eq!(pool.open_for(7), Some(id));
        assert_eq!(pool.open_for(8), None);
        assert_eq!(pool.free_count(), 1);
        let id2 = pool.acquire().unwrap();
        pool.get_mut(id2).add(2, 8, 0.0);
        assert_eq!(pool.acquire(), None, "pool exhausted");
    }

    #[test]
    fn pool_full_cohorts_not_open() {
        let mut pool: CohortPool<u32> = CohortPool::new(1, 1);
        let id = pool.acquire().unwrap();
        pool.get_mut(id).add(1, 7, 0.0);
        assert_eq!(pool.get(id).state(), CohortState::Full);
        assert_eq!(pool.open_for(7), None, "full context no longer open");
    }
}
