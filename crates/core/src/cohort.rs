//! Cohort contexts, their lifecycle FSM, and the cohort pool (paper §3.1
//! "Cohort Management").
//!
//! A cohort context tracks one batch of same-type requests:
//!
//! ```text
//! Free ──add──▶ PartiallyFull ──fill/timeout──▶ Busy ──responses sent──▶ Free
//! ```
//!
//! Contexts are preallocated in a fixed-size [`CohortPool`] (the paper
//! implements the pool as static arrays to avoid allocation and
//! synchronization overheads); running out of Free contexts is a
//! structural hazard that stalls the pipeline.
//!
//! FSM transitions are **fallible, not panicking**: a dispatcher driving
//! live traffic must be able to shed or re-queue a request that hits a
//! context in the wrong state instead of taking down the event loop, so
//! [`CohortContext::add`], [`CohortContext::launch`] and
//! [`CohortContext::release`] return [`CohortError`] values.

use std::fmt;

/// A rejected FSM transition on a [`CohortContext`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CohortError {
    /// `add` on a context that is not Free or PartiallyFull.
    NotAccepting(CohortState),
    /// `add` with a key different from the accumulating cohort's key.
    KeyMismatch {
        /// Key the context is accumulating.
        expected: u32,
        /// Key of the rejected request.
        found: u32,
    },
    /// `launch` on a context that is not PartiallyFull or Full.
    NotLaunchable(CohortState),
    /// `release` on a context that is not Busy.
    NotBusy(CohortState),
}

impl fmt::Display for CohortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CohortError::NotAccepting(s) => write!(f, "cannot add to cohort in state {s:?}"),
            CohortError::KeyMismatch { expected, found } => {
                write!(
                    f,
                    "cohort key mismatch: context holds {expected}, got {found}"
                )
            }
            CohortError::NotLaunchable(s) => write!(f, "cannot launch a cohort in state {s:?}"),
            CohortError::NotBusy(s) => write!(f, "release requires Busy, context is {s:?}"),
        }
    }
}

impl std::error::Error for CohortError {}

/// An `add` that was refused, handing the request back to the caller so
/// it can be shed or re-queued.
#[derive(Clone, Debug)]
pub struct CohortRejected<R> {
    /// The request that was not admitted.
    pub request: R,
    /// Why it was refused.
    pub error: CohortError,
}

/// Lifecycle state of a cohort context.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CohortState {
    /// Unused; may be claimed to form a new cohort.
    Free,
    /// Has at least one request and is accumulating more.
    PartiallyFull,
    /// Reached the target size; ready to launch.
    Full,
    /// Executing in the process pipeline.
    Busy,
}

/// Identifier of a context within its pool.
pub type ContextId = u32;

/// One cohort context.
#[derive(Clone, Debug)]
pub struct CohortContext<R> {
    id: ContextId,
    state: CohortState,
    key: u32,
    members: Vec<R>,
    capacity: usize,
    opened_at: f64,
}

impl<R> CohortContext<R> {
    fn new(id: ContextId, capacity: usize) -> Self {
        CohortContext {
            id,
            state: CohortState::Free,
            key: 0,
            members: Vec::with_capacity(capacity),
            capacity,
            opened_at: 0.0,
        }
    }

    /// Context id within the pool.
    pub fn id(&self) -> ContextId {
        self.id
    }

    /// Current FSM state.
    pub fn state(&self) -> CohortState {
        self.state
    }

    /// The cohort key (request type) this context accumulates.
    pub fn key(&self) -> u32 {
        self.key
    }

    /// Requests currently in the cohort.
    pub fn members(&self) -> &[R] {
        &self.members
    }

    /// Time the first request was added (for timeout accounting).
    pub fn opened_at(&self) -> f64 {
        self.opened_at
    }

    /// Occupancy as a fraction of capacity.
    pub fn fill(&self) -> f64 {
        self.members.len() as f64 / self.capacity as f64
    }

    /// Add a request.
    ///
    /// # Errors
    ///
    /// Returns the request back inside [`CohortRejected`] if the context
    /// is Busy or already Full, or if the key does not match a non-empty
    /// context's key. The context is unchanged on error.
    pub fn add(&mut self, request: R, key: u32, now: f64) -> Result<(), CohortRejected<R>> {
        match self.state {
            CohortState::Free => {
                self.state = CohortState::PartiallyFull;
                self.key = key;
                self.opened_at = now;
            }
            CohortState::PartiallyFull => {
                if self.key != key {
                    return Err(CohortRejected {
                        request,
                        error: CohortError::KeyMismatch {
                            expected: self.key,
                            found: key,
                        },
                    });
                }
            }
            s => {
                return Err(CohortRejected {
                    request,
                    error: CohortError::NotAccepting(s),
                })
            }
        }
        self.members.push(request);
        if self.members.len() >= self.capacity {
            self.state = CohortState::Full;
        }
        Ok(())
    }

    /// Transition to Busy (launch), whether Full or timed out while
    /// PartiallyFull.
    ///
    /// # Errors
    ///
    /// [`CohortError::NotLaunchable`] unless the context is PartiallyFull
    /// or Full; the context is unchanged on error.
    pub fn launch(&mut self) -> Result<(), CohortError> {
        if !matches!(self.state, CohortState::PartiallyFull | CohortState::Full) {
            return Err(CohortError::NotLaunchable(self.state));
        }
        self.state = CohortState::Busy;
        Ok(())
    }

    /// Responses sent: drain the members and return to Free.
    ///
    /// # Errors
    ///
    /// [`CohortError::NotBusy`] unless the context is Busy; the context
    /// is unchanged on error.
    pub fn release(&mut self) -> Result<Vec<R>, CohortError> {
        if self.state != CohortState::Busy {
            return Err(CohortError::NotBusy(self.state));
        }
        self.state = CohortState::Free;
        self.key = 0;
        Ok(std::mem::take(&mut self.members))
    }
}

/// Fixed pool of cohort contexts.
pub struct CohortPool<R> {
    contexts: Vec<CohortContext<R>>,
}

impl<R> fmt::Debug for CohortPool<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CohortPool")
            .field("contexts", &self.contexts.len())
            .field("free", &self.free_count())
            .finish()
    }
}

impl<R> CohortPool<R> {
    /// Preallocate `count` contexts of `capacity` requests each.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `capacity` is zero.
    pub fn new(count: u32, capacity: usize) -> Self {
        assert!(count > 0, "pool needs at least one context");
        assert!(capacity > 0, "cohort capacity must be nonzero");
        CohortPool {
            contexts: (0..count)
                .map(|i| CohortContext::new(i, capacity))
                .collect(),
        }
    }

    /// Total contexts.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// A pool is never empty (construction enforces it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Contexts currently Free.
    pub fn free_count(&self) -> usize {
        self.contexts
            .iter()
            .filter(|c| c.state == CohortState::Free)
            .count()
    }

    /// Borrow a context.
    pub fn get(&self, id: ContextId) -> &CohortContext<R> {
        &self.contexts[id as usize]
    }

    /// Mutably borrow a context.
    pub fn get_mut(&mut self, id: ContextId) -> &mut CohortContext<R> {
        &mut self.contexts[id as usize]
    }

    /// The open (PartiallyFull) context accumulating `key`, if any.
    pub fn open_for(&self, key: u32) -> Option<ContextId> {
        self.contexts
            .iter()
            .find(|c| c.state == CohortState::PartiallyFull && c.key == key)
            .map(|c| c.id)
    }

    /// Claim a Free context (does not change its state; the first `add`
    /// transitions it).
    pub fn acquire(&mut self) -> Option<ContextId> {
        self.contexts
            .iter()
            .find(|c| c.state == CohortState::Free)
            .map(|c| c.id)
    }

    /// All context states (for metrics).
    pub fn states(&self) -> Vec<CohortState> {
        self.contexts.iter().map(|c| c.state).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_free_partial_full_busy_free() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 2);
        assert_eq!(c.state(), CohortState::Free);
        c.add(10, 3, 1.0).unwrap();
        assert_eq!(c.state(), CohortState::PartiallyFull);
        assert_eq!(c.opened_at(), 1.0);
        assert_eq!(c.key(), 3);
        c.add(11, 3, 1.5).unwrap();
        assert_eq!(c.state(), CohortState::Full);
        c.launch().unwrap();
        assert_eq!(c.state(), CohortState::Busy);
        let members = c.release().unwrap();
        assert_eq!(members, vec![10, 11]);
        assert_eq!(c.state(), CohortState::Free);
        assert!(c.members().is_empty());
    }

    #[test]
    fn timeout_launch_from_partially_full() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 8);
        c.add(1, 0, 0.0).unwrap();
        assert_eq!(c.fill(), 1.0 / 8.0);
        c.launch().unwrap();
        assert_eq!(c.state(), CohortState::Busy);
    }

    #[test]
    fn mixed_keys_rejected_with_request_returned() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 4);
        c.add(1, 0, 0.0).unwrap();
        let rej = c.add(2, 1, 0.0).unwrap_err();
        assert_eq!(rej.request, 2, "rejected request handed back");
        assert_eq!(
            rej.error,
            CohortError::KeyMismatch {
                expected: 0,
                found: 1
            }
        );
        // The context is unchanged and still usable.
        assert_eq!(c.state(), CohortState::PartiallyFull);
        assert_eq!(c.members(), &[1]);
        c.add(3, 0, 0.0).unwrap();
        assert_eq!(c.members(), &[1, 3]);
    }

    #[test]
    fn add_to_busy_rejected() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 1);
        c.add(1, 0, 0.0).unwrap();
        c.launch().unwrap();
        let rej = c.add(2, 0, 0.0).unwrap_err();
        assert_eq!(rej.request, 2);
        assert_eq!(rej.error, CohortError::NotAccepting(CohortState::Busy));
        assert_eq!(c.state(), CohortState::Busy, "busy context untouched");
    }

    #[test]
    fn add_to_full_rejected() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 1);
        c.add(1, 0, 0.0).unwrap();
        assert_eq!(c.state(), CohortState::Full);
        let rej = c.add(2, 0, 0.0).unwrap_err();
        assert_eq!(rej.error, CohortError::NotAccepting(CohortState::Full));
        assert_eq!(c.members(), &[1]);
    }

    #[test]
    fn launch_free_rejected() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 1);
        assert_eq!(
            c.launch().unwrap_err(),
            CohortError::NotLaunchable(CohortState::Free)
        );
        assert_eq!(c.state(), CohortState::Free);
    }

    #[test]
    fn release_non_busy_rejected() {
        let mut c: CohortContext<u32> = CohortContext::new(0, 1);
        assert_eq!(
            c.release().unwrap_err(),
            CohortError::NotBusy(CohortState::Free)
        );
    }

    #[test]
    fn error_display_messages() {
        assert!(CohortError::NotAccepting(CohortState::Busy)
            .to_string()
            .contains("cannot add"));
        let e = CohortError::KeyMismatch {
            expected: 3,
            found: 5,
        };
        assert!(e.to_string().contains("holds 3"));
        assert!(e.to_string().contains("got 5"));
        assert!(CohortError::NotLaunchable(CohortState::Free)
            .to_string()
            .contains("cannot launch"));
        assert!(CohortError::NotBusy(CohortState::Full)
            .to_string()
            .contains("requires Busy"));
    }

    #[test]
    fn pool_acquire_and_open_for() {
        let mut pool: CohortPool<u32> = CohortPool::new(2, 4);
        assert_eq!(pool.free_count(), 2);
        assert_eq!(pool.open_for(7), None);
        let id = pool.acquire().unwrap();
        pool.get_mut(id).add(1, 7, 0.0).unwrap();
        assert_eq!(pool.open_for(7), Some(id));
        assert_eq!(pool.open_for(8), None);
        assert_eq!(pool.free_count(), 1);
        let id2 = pool.acquire().unwrap();
        pool.get_mut(id2).add(2, 8, 0.0).unwrap();
        assert_eq!(pool.acquire(), None, "pool exhausted");
    }

    #[test]
    fn pool_full_cohorts_not_open() {
        let mut pool: CohortPool<u32> = CohortPool::new(1, 1);
        let id = pool.acquire().unwrap();
        pool.get_mut(id).add(1, 7, 0.0).unwrap();
        assert_eq!(pool.get(id).state(), CohortState::Full);
        assert_eq!(pool.open_for(7), None, "full context no longer open");
    }
}
