//! Virtual-time event queue for the pipeline simulation.
//!
//! The paper's prototype is a single-threaded epoll loop whose callbacks
//! poll device stages for completion (§4.1). Under simulation the same
//! structure becomes a discrete-event loop: every stage completion is an
//! event with a virtual timestamp, processed in time order with a stable
//! FIFO tie-break — which makes runs exactly deterministic and testable.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A timestamped event. Ordering: earliest time first; equal times in
/// enqueue order.
#[derive(Clone, Debug)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. `total_cmp`
        // is a total order, so even a NaN timestamp (rejected at
        // `schedule`, but belt-and-braces here) cannot corrupt the heap
        // invariant the way `partial_cmp(..).unwrap_or(Equal)` could: a
        // NaN compared Equal to *everything*, making the order
        // non-transitive and silently breaking earliest-first delivery.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic virtual-time event queue.
///
/// # Example
///
/// ```
/// use rhythm_core::events::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// q.schedule(1.0, "early-second");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((1.0, "early-second")));
/// assert_eq!(q.now(), 1.0);
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current virtual time
    /// (events cannot fire in the past).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time is NaN");
        assert!(
            time >= self.now,
            "event scheduled in the past ({time} < {})",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        let now = self.now;
        self.schedule(now + delay, event);
    }

    /// Pop the next event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_uses_now() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "a");
        q.pop();
        q.schedule_in(1.0, "b");
        assert_eq!(q.pop(), Some((6.0, "b")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_events_rejected() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(4.0, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_delay_rejected() {
        // A NaN delay poisons `now + delay`; the push-time check catches
        // it before it can reach the heap comparator.
        let mut q = EventQueue::new();
        q.schedule_in(f64::NAN, ());
    }

    /// Regression for the heap comparator: `partial_cmp(..).unwrap_or(Equal)`
    /// was only a partial order — any NaN that slipped past the push
    /// assert compared Equal to everything and silently corrupted
    /// earliest-first delivery. `total_cmp` is total and antisymmetric on
    /// every representable f64, so heap order survives adversarial values
    /// like `-0.0`, subnormals, and infinities.
    #[test]
    fn comparator_is_a_total_order_on_odd_floats() {
        let mut q = EventQueue::new();
        // -0.0 passes the `time >= now` check at time zero and sorts
        // before +0.0 under total_cmp (both deterministic).
        for (i, &t) in [0.0, -0.0, f64::MIN_POSITIVE, 1e-300, f64::INFINITY, 2.0]
            .iter()
            .enumerate()
        {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(
                t.total_cmp(&last).is_ge(),
                "pop order must be non-decreasing: {t} after {last}"
            );
            last = t;
            n += 1;
        }
        assert_eq!(n, 6);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
