//! The Rhythm pipeline: Reader → Parser → Dispatch → Process (n backend +
//! n+1 process stages) → Response, executed as a deterministic
//! discrete-event simulation over virtual time (paper §3–4).
//!
//! * The **reader** accumulates arrivals in order; a full read batch (or
//!   a reader timeout) hands a double-buffered batch to the parser.
//! * The **parser** is a device kernel; its output is dispatched into
//!   per-type cohort contexts from the fixed [`CohortPool`].
//! * A context launches when **Full** or when its formation **timeout**
//!   fires (paper: "requests can be delayed for a limited amount of time
//!   and still achieve acceptable response times").
//! * Process stages are device kernels; the device runs at most
//!   `device_slots` kernels concurrently (HyperQ-style), and stages of one
//!   cohort are serialized by true dependencies. Backend accesses and the
//!   response send add non-device latency.
//! * Running out of Free contexts is a structural hazard: dispatch stalls
//!   until a context is released (paper §3.1).

use crate::cohort::{CohortPool, CohortState, ContextId};
use crate::events::EventQueue;
use crate::metrics::{LatencyStats, PipelineReport};
use crate::service::Service;

use rhythm_obs::{s_to_us, ArgValue, Clock, NoopRecorder, Recorder};

use std::collections::VecDeque;

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Target cohort size (requests per kernel launch).
    pub cohort_size: u32,
    /// Read-batch size handed to the parser (defaults to cohort size).
    pub read_batch: u32,
    /// Cohort formation timeout in seconds.
    pub formation_timeout_s: f64,
    /// Reader flush timeout in seconds.
    pub reader_timeout_s: f64,
    /// Preallocated cohort contexts ("cohorts in flight", paper §6.3).
    pub pool_contexts: u32,
    /// Concurrent kernels the device sustains (32 with HyperQ, 1 on
    /// single-queue parts).
    pub device_slots: u32,
    /// Concurrent parser instances (paper §3.1: "there may be one or more
    /// instances, allowing for parallelism across and within stages";
    /// §6.4: "multiple parsers … would further help in hiding parser
    /// latency").
    pub parser_instances: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            cohort_size: 4096,
            read_batch: 4096,
            formation_timeout_s: 10e-3,
            reader_timeout_s: 10e-3,
            pool_contexts: 8,
            device_slots: 32,
            parser_instances: 1,
        }
    }
}

#[derive(Copy, Clone, Debug)]
struct Req {
    ty: u32,
    arrived: f64,
}

#[derive(Copy, Clone, Debug)]
enum Event {
    Arrival { ty: u32 },
    ReaderFlush { epoch: u64 },
    ParserDone { batch: u64 },
    CohortTimeout { ctx: ContextId, generation: u64 },
    StageDone { ctx: ContextId, stage: u32 },
    BackendDone { ctx: ContextId, stage: u32 },
    ResponseDone { ctx: ContextId },
}

/// The pipeline simulator. Construct, then [`Pipeline::run`] a finite
/// arrival schedule.
#[derive(Debug)]
pub struct Pipeline<S> {
    service: S,
    config: PipelineConfig,
}

impl<S: Service> Pipeline<S> {
    /// Create a pipeline over a service latency model.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized cohorts, pools, or device slots.
    pub fn new(service: S, config: PipelineConfig) -> Self {
        assert!(config.cohort_size > 0, "cohort size must be nonzero");
        assert!(config.read_batch > 0, "read batch must be nonzero");
        assert!(config.pool_contexts > 0, "need at least one context");
        assert!(config.device_slots > 0, "need at least one device slot");
        assert!(config.parser_instances > 0, "need at least one parser");
        Pipeline { service, config }
    }

    /// Run a finite arrival schedule (`(time, type)` pairs, any order) to
    /// completion and report metrics.
    ///
    /// Equivalent to [`Pipeline::run_traced`] with the no-op recorder;
    /// both produce bit-identical reports because the recorder is purely
    /// observational.
    pub fn run(&self, arrivals: &[(f64, u32)]) -> PipelineReport {
        self.run_traced(arrivals, &NoopRecorder)
    }

    /// Run an arrival schedule while streaming trace events into `rec`.
    ///
    /// All timestamps are in the pipeline's **virtual** time
    /// ([`Clock::Virtual`], microseconds). The recorder sees:
    ///
    /// * complete spans on per-stage tracks — `stage:reader` (batch
    ///   accumulation), `stage:parser` (parse kernels, stamped when they
    ///   actually claim a device slot), `stage:process` (process kernels),
    ///   `stage:backend`, and `stage:response`;
    /// * per-context tracks (`ctx0`, `ctx1`, ...) with nested
    ///   `form`/`execute` spans and instant events for every cohort FSM
    ///   transition (`Free→PartiallyFull`, `PartiallyFull→Full`,
    ///   `Full→Busy`, `PartiallyFull→Busy (timeout)`, `Busy→Free`), each
    ///   carrying the cohort fill at that moment;
    /// * `backlog_depth` and `dispatch_stalls` gauges on the `dispatch`
    ///   track and a `queued_kernels` gauge on the `device` track;
    /// * `request_latency_s` and `cohort_fill` streaming histograms.
    ///
    /// The recorder cannot influence the simulation: the returned
    /// [`PipelineReport`] is bit-identical to [`Pipeline::run`].
    pub fn run_traced<R: Recorder + ?Sized>(
        &self,
        arrivals: &[(f64, u32)],
        rec: &R,
    ) -> PipelineReport {
        let cfg = &self.config;
        let mut q: EventQueue<Event> = EventQueue::new();
        for &(t, ty) in arrivals {
            q.schedule(t, Event::Arrival { ty });
        }

        let mut pool: CohortPool<Req> =
            CohortPool::new(cfg.pool_contexts, cfg.cohort_size as usize);

        // Reader state (double buffered: the front buffer keeps filling
        // while parser instances drain read batches).
        let mut reader: VecDeque<Req> = VecDeque::new();
        let mut reader_epoch: u64 = 0;
        let mut parsers_busy: u32 = 0;
        let mut next_batch_id: u64 = 0;
        let mut inflight_batches: std::collections::HashMap<u64, Vec<Req>> =
            std::collections::HashMap::new();

        // Device slots.
        let mut device_busy: u32 = 0;
        let mut device_queue: VecDeque<(f64, Event)> = VecDeque::new();

        // Dispatch overflow when the pool is exhausted.
        let mut backlog: VecDeque<Req> = VecDeque::new();

        // Per-context open generation: bumped each time a Free context is
        // opened for a new cohort. A CohortTimeout only fires for the
        // generation it was armed against, so a timeout scheduled for a
        // released-and-reopened context can never launch the new cohort
        // early (the old `opened_at` f64 comparison aliased when the two
        // opens happened at the same virtual time).
        let mut generations: Vec<u64> = vec![0; cfg.pool_contexts as usize];

        // Epoch for which a ReaderFlush event is currently in the queue,
        // if any. One pending flush per reader epoch is enough: the
        // deadline depends only on the front request, which changes only
        // when the epoch does.
        let mut flush_armed: Option<u64> = None;

        // Metrics.
        let mut latencies: Vec<f64> = Vec::new();
        let mut report = PipelineReport::default();
        let mut fill_sum = 0.0;

        // A kernel span covers the device-slot occupancy [now, now + dur]:
        // it is emitted at the moment a kernel actually claims a slot —
        // immediately in `submit_kernel!` or later at a device-queue pop.
        macro_rules! trace_kernel {
            ($now:expr, $dur:expr, $ev:expr) => {{
                if rec.enabled() {
                    match $ev {
                        Event::ParserDone { batch } => {
                            let n = inflight_batches.get(batch).map_or(0, |b| b.len() as u64);
                            rec.span(
                                Clock::Virtual,
                                "stage:parser",
                                "parse",
                                s_to_us($now),
                                s_to_us($dur),
                                &[("requests", ArgValue::U64(n))],
                            );
                        }
                        Event::StageDone { ctx, stage } => {
                            let cohort = pool.get(*ctx).members().len() as u64;
                            rec.span(
                                Clock::Virtual,
                                "stage:process",
                                &format!("stage {stage}"),
                                s_to_us($now),
                                s_to_us($dur),
                                &[
                                    ("ctx", ArgValue::U64(*ctx as u64)),
                                    ("requests", ArgValue::U64(cohort)),
                                ],
                            );
                        }
                        _ => {}
                    }
                }
            }};
        }

        macro_rules! submit_kernel {
            ($q:expr, $dur:expr, $ev:expr) => {{
                let dur = $dur;
                let ev = $ev;
                report.kernels_launched += 1;
                if device_busy < cfg.device_slots {
                    device_busy += 1;
                    trace_kernel!($q.now(), dur, &ev);
                    $q.schedule_in(dur, ev);
                } else {
                    device_queue.push_back((dur, ev));
                    report.device_queue_peak =
                        report.device_queue_peak.max(device_queue.len() as u64);
                    if rec.enabled() {
                        rec.counter(
                            Clock::Virtual,
                            "device",
                            "queued_kernels",
                            s_to_us($q.now()),
                            device_queue.len() as f64,
                        );
                    }
                }
            }};
        }

        // The two device-queue pop sites share this: a queued kernel
        // finally claims a slot, so its span starts now.
        macro_rules! pop_device_queue {
            ($q:expr) => {{
                if let Some((dur, ev)) = device_queue.pop_front() {
                    device_busy += 1;
                    trace_kernel!($q.now(), dur, &ev);
                    $q.schedule_in(dur, ev);
                    if rec.enabled() {
                        rec.counter(
                            Clock::Virtual,
                            "device",
                            "queued_kernels",
                            s_to_us($q.now()),
                            device_queue.len() as f64,
                        );
                    }
                }
            }};
        }

        // The reader span covers accumulation: first arrival of the batch
        // to the moment it is handed to a parser instance.
        macro_rules! trace_read_batch {
            ($q:expr, $batch:expr) => {{
                if rec.enabled() {
                    if let Some(first) = $batch.first() {
                        rec.span(
                            Clock::Virtual,
                            "stage:reader",
                            "read batch",
                            s_to_us(first.arrived),
                            s_to_us($q.now() - first.arrived),
                            &[("requests", ArgValue::U64($batch.len() as u64))],
                        );
                    }
                }
            }};
        }

        macro_rules! maybe_start_parse {
            ($q:expr) => {{
                while parsers_busy < cfg.parser_instances && reader.len() as u32 >= cfg.read_batch {
                    let n = cfg.read_batch as usize;
                    let batch: Vec<Req> = reader.drain(..n).collect();
                    reader_epoch += 1;
                    parsers_busy += 1;
                    let dur = self.service.parse_latency(batch.len() as u32);
                    let id = next_batch_id;
                    next_batch_id += 1;
                    trace_read_batch!($q, batch);
                    inflight_batches.insert(id, batch);
                    submit_kernel!($q, dur, Event::ParserDone { batch: id });
                }
                // Arm at most one flush timer per reader epoch. Arming on
                // every arrival scheduled O(arrivals) redundant events for
                // the same deadline.
                if flush_armed != Some(reader_epoch) {
                    if let Some(front) = reader.front() {
                        let deadline = front.arrived + cfg.reader_timeout_s;
                        let epoch = reader_epoch;
                        flush_armed = Some(epoch);
                        $q.schedule(deadline.max($q.now()), Event::ReaderFlush { epoch });
                    }
                }
            }};
        }

        macro_rules! flush_reader {
            ($q:expr) => {{
                if parsers_busy < cfg.parser_instances && !reader.is_empty() {
                    let batch: Vec<Req> = reader.drain(..).collect();
                    reader_epoch += 1;
                    parsers_busy += 1;
                    let dur = self.service.parse_latency(batch.len() as u32);
                    let id = next_batch_id;
                    next_batch_id += 1;
                    trace_read_batch!($q, batch);
                    inflight_batches.insert(id, batch);
                    submit_kernel!($q, dur, Event::ParserDone { batch: id });
                }
            }};
        }

        macro_rules! launch_cohort {
            ($q:expr, $ctx:expr, $timeout:expr) => {{
                let id = $ctx;
                let len = pool.get(id).members().len() as u32;
                let key = pool.get(id).key();
                // Both launch sites guard the state (Full on dispatch,
                // PartiallyFull on timeout), so this cannot fail; if it
                // ever did, skipping the launch leaves the context to a
                // later timeout instead of crashing the event loop.
                let launched = pool.get_mut(id).launch().is_ok();
                debug_assert!(launched, "guarded launch cannot fail");
                if launched {
                    report.cohorts_launched += 1;
                    if $timeout {
                        report.timeout_launches += 1;
                    }
                    let fill = len as f64 / cfg.cohort_size as f64;
                    fill_sum += fill;
                    if rec.enabled() {
                        let track = format!("ctx{id}");
                        let ts = s_to_us($q.now());
                        rec.end(Clock::Virtual, &track, ts); // close "form"
                        let name = if $timeout {
                            "PartiallyFull→Busy (timeout)"
                        } else {
                            "Full→Busy"
                        };
                        rec.instant(
                            Clock::Virtual,
                            &track,
                            name,
                            ts,
                            &[("fill", ArgValue::F64(fill))],
                        );
                        rec.begin(
                            Clock::Virtual,
                            &track,
                            "execute",
                            ts,
                            &[
                                ("type", ArgValue::U64(key as u64)),
                                ("requests", ArgValue::U64(len as u64)),
                            ],
                        );
                        rec.sample("cohort_fill", fill);
                    }
                    let dur = self.service.stage_latency(key, 0, len);
                    submit_kernel!($q, dur, Event::StageDone { ctx: id, stage: 0 });
                }
            }};
        }

        // `$from_backlog = false`: a newly parsed request; a stall counts
        // once and queues it at the back (arrival order).
        // `$from_backlog = true`: a request popped off the backlog during
        // drain; a re-stall puts it back at the FRONT (it is still the
        // oldest stalled request) and does not count a second stall.
        macro_rules! dispatch_one {
            ($q:expr, $req:expr, $from_backlog:expr) => {{
                let req: Req = $req;
                let ctx = match pool.open_for(req.ty) {
                    Some(c) => Some(c),
                    None => pool.acquire(),
                };
                // A request the chosen context refuses (defensively
                // unreachable: open_for/acquire guarantee an accepting
                // context) is re-queued exactly like a pool-exhaustion
                // stall instead of panicking the event loop.
                let mut requeue: Option<Req> = None;
                let mut dispatched = false;
                match ctx {
                    Some(id) => {
                        let fresh = pool.get(id).state() == CohortState::Free;
                        match pool.get_mut(id).add(req, req.ty, $q.now()) {
                            Err(rej) => requeue = Some(rej.request),
                            Ok(()) => {
                                dispatched = true;
                                if fresh {
                                    generations[id as usize] += 1;
                                    let generation = generations[id as usize];
                                    $q.schedule_in(
                                        cfg.formation_timeout_s,
                                        Event::CohortTimeout {
                                            ctx: id,
                                            generation,
                                        },
                                    );
                                }
                                if rec.enabled() {
                                    let track = format!("ctx{id}");
                                    let ts = s_to_us($q.now());
                                    let full = pool.get(id).state() == CohortState::Full;
                                    let fill = pool.get(id).members().len() as f64
                                        / cfg.cohort_size as f64;
                                    if fresh {
                                        rec.begin(
                                            Clock::Virtual,
                                            &track,
                                            "form",
                                            ts,
                                            &[("type", ArgValue::U64(req.ty as u64))],
                                        );
                                    }
                                    let name = match (fresh, full) {
                                        (true, true) => "Free→Full",
                                        (true, false) => "Free→PartiallyFull",
                                        (false, true) => "PartiallyFull→Full",
                                        (false, false) => "",
                                    };
                                    if !name.is_empty() {
                                        rec.instant(
                                            Clock::Virtual,
                                            &track,
                                            name,
                                            ts,
                                            &[("fill", ArgValue::F64(fill))],
                                        );
                                    }
                                }
                                if pool.get(id).state() == CohortState::Full {
                                    launch_cohort!($q, id, false);
                                }
                            }
                        }
                    }
                    None => requeue = Some(req),
                }
                if let Some(req) = requeue {
                    if $from_backlog {
                        backlog.push_front(req);
                    } else {
                        report.dispatch_stalls += 1;
                        backlog.push_back(req);
                    }
                    if rec.enabled() {
                        let ts = s_to_us($q.now());
                        rec.counter(
                            Clock::Virtual,
                            "dispatch",
                            "backlog_depth",
                            ts,
                            backlog.len() as f64,
                        );
                        if !$from_backlog {
                            rec.counter(
                                Clock::Virtual,
                                "dispatch",
                                "dispatch_stalls",
                                ts,
                                report.dispatch_stalls as f64,
                            );
                        }
                    }
                }
                dispatched
            }};
        }

        while let Some((now, event)) = q.pop() {
            match event {
                Event::Arrival { ty } => {
                    reader.push_back(Req { ty, arrived: now });
                    report.reader_peak = report.reader_peak.max(reader.len() as u64);
                    maybe_start_parse!(q);
                }
                Event::ReaderFlush { epoch } => {
                    if epoch == reader_epoch {
                        // The one pending flush for this epoch has fired;
                        // if the parsers were all busy, ParserDone re-arms.
                        flush_armed = None;
                        flush_reader!(q);
                    }
                }
                Event::ParserDone { batch } => {
                    device_busy -= 1;
                    parsers_busy -= 1;
                    let batch = inflight_batches.remove(&batch).expect("batch in flight");
                    for req in batch {
                        dispatch_one!(q, req, false);
                    }
                    pop_device_queue!(q);
                    // Starts new parses if batches are ready, and re-arms
                    // the flush timer for whatever remains in the reader.
                    maybe_start_parse!(q);
                }
                Event::CohortTimeout { ctx, generation } => {
                    let c = pool.get(ctx);
                    if c.state() == CohortState::PartiallyFull
                        && generations[ctx as usize] == generation
                    {
                        launch_cohort!(q, ctx, true);
                    }
                }
                Event::StageDone { ctx, stage } => {
                    device_busy -= 1;
                    pop_device_queue!(q);
                    let key = pool.get(ctx).key();
                    let cohort = pool.get(ctx).members().len() as u32;
                    let stages = self.service.stages(key);
                    if stage + 1 < stages {
                        let dur = self.service.backend_latency(key, stage, cohort);
                        if rec.enabled() {
                            rec.span(
                                Clock::Virtual,
                                "stage:backend",
                                &format!("backend {stage}"),
                                s_to_us(now),
                                s_to_us(dur),
                                &[
                                    ("ctx", ArgValue::U64(ctx as u64)),
                                    ("requests", ArgValue::U64(cohort as u64)),
                                ],
                            );
                        }
                        q.schedule_in(dur, Event::BackendDone { ctx, stage });
                    } else {
                        let dur = self.service.response_latency(key, cohort);
                        if rec.enabled() {
                            rec.span(
                                Clock::Virtual,
                                "stage:response",
                                "response",
                                s_to_us(now),
                                s_to_us(dur),
                                &[
                                    ("ctx", ArgValue::U64(ctx as u64)),
                                    ("requests", ArgValue::U64(cohort as u64)),
                                ],
                            );
                        }
                        q.schedule_in(dur, Event::ResponseDone { ctx });
                    }
                }
                Event::BackendDone { ctx, stage } => {
                    let key = pool.get(ctx).key();
                    let cohort = pool.get(ctx).members().len() as u32;
                    let dur = self.service.stage_latency(key, stage + 1, cohort);
                    submit_kernel!(
                        q,
                        dur,
                        Event::StageDone {
                            ctx,
                            stage: stage + 1
                        }
                    );
                }
                Event::ResponseDone { ctx } => {
                    // ResponseDone is only scheduled for a Busy context,
                    // so release cannot fail; an empty fallback keeps the
                    // loop alive rather than crashing it.
                    let members = pool.get_mut(ctx).release().unwrap_or_default();
                    for m in &members {
                        latencies.push(now - m.arrived);
                    }
                    if rec.enabled() {
                        let track = format!("ctx{ctx}");
                        let ts = s_to_us(now);
                        rec.end(Clock::Virtual, &track, ts); // close "execute"
                        rec.instant(Clock::Virtual, &track, "Busy→Free", ts, &[]);
                        for m in &members {
                            rec.sample("request_latency_s", now - m.arrived);
                        }
                    }
                    report.completed += members.len() as u64;
                    report.makespan_s = now;
                    // Structural hazard cleared: drain backlog into the
                    // newly freed context, preserving arrival order. A
                    // re-stall puts the request back at the front (not the
                    // back, which would rotate the queue) and is not a new
                    // stall for accounting.
                    while let Some(req) = backlog.pop_front() {
                        if !dispatch_one!(q, req, true) {
                            break;
                        }
                    }
                    if rec.enabled() {
                        rec.counter(
                            Clock::Virtual,
                            "dispatch",
                            "backlog_depth",
                            s_to_us(now),
                            backlog.len() as f64,
                        );
                    }
                }
            }
        }

        report.latency = LatencyStats::from_samples(latencies);
        if report.cohorts_launched > 0 {
            report.mean_fill = fill_sum / report.cohorts_launched as f64;
        }
        report
    }

    /// The configured cohort size.
    pub fn cohort_size(&self) -> u32 {
        self.config.cohort_size
    }

    /// Borrow the service model.
    pub fn service(&self) -> &S {
        &self.service
    }
}

/// Build a uniform-rate arrival schedule: `count` requests of types drawn
/// round-robin from `mix` at `rate` requests/second starting at time 0.
pub fn uniform_arrivals(count: u64, rate: f64, mix: &[u32]) -> Vec<(f64, u32)> {
    assert!(rate > 0.0, "rate must be positive");
    assert!(!mix.is_empty(), "mix must be nonempty");
    (0..count)
        .map(|i| (i as f64 / rate, mix[(i % mix.len() as u64) as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TableService;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            cohort_size: 8,
            read_batch: 8,
            formation_timeout_s: 1e-3,
            reader_timeout_s: 1e-3,
            pool_contexts: 4,
            device_slots: 32,
            parser_instances: 1,
        }
    }

    #[test]
    fn all_requests_complete() {
        let p = Pipeline::new(TableService::uniform(2, 2), small_config());
        let arrivals = uniform_arrivals(256, 1e6, &[0, 1]);
        let r = p.run(&arrivals);
        assert_eq!(r.completed, 256);
        assert!(r.makespan_s > 0.0);
        assert_eq!(r.latency.count, 256);
        assert!(r.cohorts_launched >= 256 / 8);
    }

    #[test]
    fn full_cohorts_at_high_rate() {
        let p = Pipeline::new(TableService::uniform(1, 1), small_config());
        let arrivals = uniform_arrivals(512, 1e8, &[0]);
        let r = p.run(&arrivals);
        assert_eq!(r.completed, 512);
        assert!(
            r.mean_fill > 0.99,
            "high arrival rate fills cohorts: {}",
            r.mean_fill
        );
        assert_eq!(r.timeout_launches, 0);
    }

    #[test]
    fn timeouts_fire_at_low_rate() {
        let p = Pipeline::new(TableService::uniform(1, 1), small_config());
        // 100 requests at 1k req/s: inter-arrival 1 ms = reader timeout;
        // cohorts can never fill before the formation timeout.
        let arrivals = uniform_arrivals(100, 1e3, &[0]);
        let r = p.run(&arrivals);
        assert_eq!(r.completed, 100);
        assert!(r.timeout_launches > 0, "low rate must launch by timeout");
        assert!(r.mean_fill < 1.0);
    }

    #[test]
    fn latency_grows_with_cohort_size() {
        let mk = |cohort: u32| {
            let mut cfg = small_config();
            cfg.cohort_size = cohort;
            cfg.read_batch = cohort;
            let p = Pipeline::new(TableService::uniform(1, 1), cfg);
            // Rate high enough to fill even the large cohort quickly.
            let arrivals = uniform_arrivals(4096, 1e7, &[0]);
            p.run(&arrivals).latency.mean
        };
        let small = mk(16);
        let large = mk(1024);
        assert!(
            large > small,
            "bigger cohorts wait longer to form and execute: {small} vs {large}"
        );
    }

    #[test]
    fn single_slot_serializes_and_hurts_throughput() {
        let mut cfg = small_config();
        cfg.device_slots = 32;
        let p = Pipeline::new(TableService::uniform(4, 2), cfg.clone());
        let arrivals = uniform_arrivals(2048, 5e6, &[0, 1, 2, 3]);
        let hyperq = p.run(&arrivals);

        cfg.device_slots = 1;
        let p1 = Pipeline::new(TableService::uniform(4, 2), cfg);
        let single = p1.run(&arrivals);

        assert_eq!(hyperq.completed, single.completed);
        assert!(
            single.makespan_s > hyperq.makespan_s,
            "hyperq {} vs single {}",
            hyperq.makespan_s,
            single.makespan_s
        );
        assert!(single.device_queue_peak > 0);
    }

    #[test]
    fn pool_exhaustion_stalls_dispatch() {
        let mut cfg = small_config();
        cfg.pool_contexts = 1;
        cfg.formation_timeout_s = 10.0; // effectively never
        let p = Pipeline::new(TableService::uniform(4, 1), cfg);
        // Many types at once with one context: later types must stall.
        let arrivals = uniform_arrivals(64, 1e7, &[0, 1, 2, 3]);
        let r = p.run(&arrivals);
        assert!(r.dispatch_stalls > 0);
        assert_eq!(r.completed, 64, "stalled requests complete eventually");
    }

    #[test]
    fn deterministic_runs() {
        let p = Pipeline::new(TableService::uniform(3, 2), small_config());
        let arrivals = uniform_arrivals(300, 2e6, &[0, 1, 2]);
        let a = p.run(&arrivals);
        let b = p.run(&arrivals);
        assert_eq!(a, b);
    }

    /// The recorder is observational: tracing a run must not change the
    /// report in any field, at any rate, including under backlog stalls.
    #[test]
    fn tracing_does_not_change_report() {
        use rhythm_obs::TraceRecorder;
        let mut cfg = small_config();
        cfg.pool_contexts = 1; // force dispatch stalls too
        let p = Pipeline::new(TableService::uniform(4, 2), cfg);
        let arrivals = uniform_arrivals(512, 5e6, &[0, 1, 2, 3]);
        let untraced = p.run(&arrivals);
        let rec = TraceRecorder::new();
        let traced = p.run_traced(&arrivals, &rec);
        assert_eq!(untraced, traced, "recorder must be invisible");
        assert!(!rec.is_empty(), "trace recorded events");
    }

    /// The trace carries the full cohort lifecycle: stage spans, FSM
    /// transitions with fill, gauges, and histograms — and exports as a
    /// valid Chrome trace with per-track monotone timestamps.
    #[test]
    fn trace_contains_stages_fsm_and_histograms() {
        use rhythm_obs::{validate_chrome_trace, TraceRecorder};
        let mut cfg = small_config();
        cfg.pool_contexts = 1;
        let p = Pipeline::new(TableService::uniform(4, 2), cfg);
        // Mixed rate: full launches, timeout launches, and stalls.
        let mut arrivals = uniform_arrivals(256, 5e6, &[0, 1, 2, 3]);
        arrivals.extend(
            uniform_arrivals(8, 1e3, &[0])
                .iter()
                .map(|&(t, ty)| (t + 1.0, ty)),
        );
        let rec = TraceRecorder::new();
        let report = p.run_traced(&arrivals, &rec);
        assert_eq!(report.completed, 264);
        assert!(
            report.timeout_launches > 0,
            "need a timeout launch in trace"
        );
        assert!(report.dispatch_stalls > 0, "need a stall in trace");

        let check = validate_chrome_trace(&rec.chrome_json()).expect("valid Chrome trace");
        for name in [
            "read batch",
            "parse",
            "stage 0",
            "response",
            "form",
            "execute",
            "Free→PartiallyFull",
            "PartiallyFull→Full",
            "Full→Busy",
            "PartiallyFull→Busy (timeout)",
            "Busy→Free",
        ] {
            assert!(
                check.names.iter().any(|n| n == name),
                "trace missing {name:?}; has {:?}",
                check.names
            );
        }
        let lat = rec
            .histogram("request_latency_s")
            .expect("latency histogram");
        assert_eq!(lat.count(), 264);
        let fill = rec.histogram("cohort_fill").expect("fill histogram");
        assert_eq!(fill.count(), report.cohorts_launched);
        assert!(rec.summary().contains("histogram request_latency_s"));
    }

    #[test]
    fn uniform_arrivals_shape() {
        let a = uniform_arrivals(4, 2.0, &[7, 9]);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0], (0.0, 7));
        assert_eq!(a[1], (0.5, 9));
        assert_eq!(a[3].0, 1.5);
    }

    #[test]
    #[should_panic(expected = "cohort size")]
    fn zero_cohort_rejected() {
        let mut cfg = small_config();
        cfg.cohort_size = 0;
        let _ = Pipeline::new(TableService::uniform(1, 1), cfg);
    }

    /// With a parse-dominated service, more parser instances raise
    /// throughput (paper §6.4: "multiple parsers … would further help in
    /// hiding parser latency").
    #[test]
    fn multiple_parsers_hide_parser_latency() {
        let mut svc = TableService::uniform(1, 1);
        svc.parse_per_req = 5e-6; // parse-bound
        svc.stage_per_req = 100e-9;
        let run = |parsers: u32| {
            let mut cfg = small_config();
            cfg.parser_instances = parsers;
            let p = Pipeline::new(svc.clone(), cfg);
            let arrivals = uniform_arrivals(2048, 1e8, &[0]);
            p.run(&arrivals).makespan_s
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four < one * 0.6,
            "4 parsers should overlap parse latency: 1 -> {one:.6}, 4 -> {four:.6}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one parser")]
    fn zero_parsers_rejected() {
        let mut cfg = small_config();
        cfg.parser_instances = 0;
        let _ = Pipeline::new(TableService::uniform(1, 1), cfg);
    }

    /// A [`TableService`] wrapper that logs every stage-0 launch as
    /// `(key, cohort_len)`, so tests can observe cohort composition.
    #[derive(Clone, Debug)]
    struct LogService {
        inner: TableService,
        launches: std::rc::Rc<std::cell::RefCell<Vec<(u32, u32)>>>,
    }

    impl Service for LogService {
        fn stages(&self, key: u32) -> u32 {
            self.inner.stages(key)
        }
        fn parse_latency(&self, batch: u32) -> f64 {
            self.inner.parse_latency(batch)
        }
        fn stage_latency(&self, key: u32, stage: u32, cohort: u32) -> f64 {
            if stage == 0 {
                self.launches.borrow_mut().push((key, cohort));
            }
            self.inner.stage_latency(key, stage, cohort)
        }
        fn backend_latency(&self, key: u32, stage: u32, cohort: u32) -> f64 {
            self.inner.backend_latency(key, stage, cohort)
        }
        fn response_latency(&self, key: u32, cohort: u32) -> f64 {
            self.inner.response_latency(key, cohort)
        }
    }

    /// Regression: draining the backlog after a context release must keep
    /// FIFO order. A request that re-stalls goes back to the FRONT of the
    /// backlog and is not counted as a second dispatch stall. (The old
    /// code pushed it to the back, rotating the queue: cohorts of the
    /// same type fragmented into singletons, and `dispatch_stalls`
    /// counted the same request once per drain attempt.)
    #[test]
    fn backlog_drain_preserves_fifo_order() {
        let launches = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let svc = LogService {
            inner: TableService::uniform(3, 1),
            launches: launches.clone(),
        };
        let cfg = PipelineConfig {
            cohort_size: 4,
            read_batch: 12,
            formation_timeout_s: 1e-3,
            reader_timeout_s: 1e-3,
            pool_contexts: 1,
            device_slots: 32,
            parser_instances: 1,
        };
        let p = Pipeline::new(svc, cfg);
        // One parse batch; types 1 and 2 arrive interleaved in pairs and
        // all stall behind the type-0 cohort that claims the only context.
        let types = [0, 0, 0, 0, 1, 1, 2, 2, 1, 1, 2, 2];
        let arrivals: Vec<(f64, u32)> = types
            .iter()
            .enumerate()
            .map(|(i, &ty)| (i as f64 * 1e-8, ty))
            .collect();
        let r = p.run(&arrivals);

        assert_eq!(r.completed, 12);
        // Each of the 8 stalled requests is counted exactly once.
        assert_eq!(r.dispatch_stalls, 8);
        // FIFO drain keeps arrival-order pairs together; the rotating
        // backlog produced singleton cohorts here.
        assert_eq!(
            *launches.borrow(),
            vec![(0, 4), (1, 2), (2, 2), (1, 2), (2, 2)],
            "cohorts must form in arrival order without fragmenting"
        );
    }

    /// Regression: a formation timeout armed for an earlier occupancy of
    /// a context must not fire for a later cohort in the same context.
    /// With a zero-latency service and `read_batch = 1`, a context can be
    /// opened, filled, launched, completed, released, and reopened at the
    /// same virtual time — the old `opened_at` f64 comparison aliased the
    /// two occupancies, so the stale timer passed the identity check. The
    /// per-context generation counter keeps stale timers inert by
    /// construction.
    #[test]
    fn stale_timeout_does_not_alias_reopened_context() {
        let mut svc = TableService::uniform(1, 1);
        svc.parse_per_req = 0.0;
        svc.stage_per_req = 0.0;
        svc.backend_fixed = 0.0;
        svc.response_fixed = 0.0;
        svc.launch_overhead = 0.0;
        let cfg = PipelineConfig {
            cohort_size: 2,
            read_batch: 1,
            formation_timeout_s: 1e-3,
            reader_timeout_s: 1e-3,
            pool_contexts: 1,
            device_slots: 32,
            parser_instances: 1,
        };
        let p = Pipeline::new(svc, cfg);
        // r1 + r2 fill and retire a cohort at t = 0; r3 reopens the same
        // context at t = 0 with the first occupancy's timer still queued.
        let arrivals = [(0.0, 0), (0.0, 0), (0.0, 0)];
        let a = p.run(&arrivals);
        assert_eq!(a.completed, 3);
        assert_eq!(a.cohorts_launched, 2);
        // Only the second occupancy's own timer launches the partial
        // cohort; the stale timer is a no-op.
        assert_eq!(a.timeout_launches, 1);
        let b = p.run(&arrivals);
        assert_eq!(a, b, "aliased-timer schedule must stay deterministic");
    }

    /// Regression: arming the reader-flush timer once per epoch must not
    /// change behaviour relative to arming it on every arrival — and the
    /// timer must still fire when a flush attempt finds all parser
    /// instances busy (ParserDone re-arms it).
    #[test]
    fn reader_flush_fires_once_per_epoch() {
        let p = Pipeline::new(TableService::uniform(2, 2), small_config());
        // Below-batch trickle: every batch needs the flush timer.
        let arrivals = uniform_arrivals(30, 2e3, &[0, 1]);
        let r = p.run(&arrivals);
        assert_eq!(r.completed, 30);
        assert!(r.timeout_launches > 0 || r.cohorts_launched > 0);

        // Parse-bound: flush deadlines pass while the parser is busy, so
        // completion depends on the ParserDone re-arm path.
        let mut svc = TableService::uniform(1, 1);
        svc.parse_per_req = 5e-3; // ≫ reader timeout
        let p = Pipeline::new(svc, small_config());
        let r = p.run(&uniform_arrivals(20, 1e3, &[0]));
        assert_eq!(r.completed, 20, "busy-parser flushes must be re-armed");
    }
}
