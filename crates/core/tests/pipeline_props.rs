//! Property tests for the cohort pipeline: conservation, ordering and
//! timeout guarantees under randomized arrival patterns.

use proptest::prelude::*;

use rhythm_core::pipeline::{Pipeline, PipelineConfig};
use rhythm_core::service::TableService;

fn config(cohort: u32, pool: u32, slots: u32, timeout_ms: f64) -> PipelineConfig {
    PipelineConfig {
        cohort_size: cohort,
        read_batch: cohort,
        formation_timeout_s: timeout_ms * 1e-3,
        reader_timeout_s: timeout_ms * 1e-3,
        pool_contexts: pool,
        device_slots: slots,
        parser_instances: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every arrival completes exactly once, whatever the
    /// arrival pattern, cohort size, pool size or device width.
    #[test]
    fn conservation(
        gaps in prop::collection::vec(0u64..2000, 1..300),
        types in prop::collection::vec(0u32..4, 300),
        cohort in 1u32..64,
        pool in 1u32..6,
        slots in 1u32..8,
    ) {
        let mut t = 0.0;
        let arrivals: Vec<(f64, u32)> = gaps
            .iter()
            .zip(&types)
            .map(|(&g, &ty)| {
                t += g as f64 * 1e-7;
                (t, ty)
            })
            .collect();
        let p = Pipeline::new(TableService::uniform(4, 2), config(cohort, pool, slots, 1.0));
        let r = p.run(&arrivals);
        prop_assert_eq!(r.completed, arrivals.len() as u64);
        prop_assert_eq!(r.latency.count, arrivals.len() as u64);
        prop_assert!(r.makespan_s >= arrivals.last().map(|a| a.0).unwrap_or(0.0));
        prop_assert!(r.cohorts_launched >= arrivals.len() as u64 / cohort as u64);
    }

    /// Latency is bounded below by the service time of a single cohort
    /// and every cohort holds at most `cohort_size` members (fill ≤ 1).
    #[test]
    fn fill_and_latency_bounds(
        n in 1u64..400,
        rate in 1.0e4f64..1.0e8,
        cohort in 1u32..128,
    ) {
        let svc = TableService::uniform(2, 1);
        let p = Pipeline::new(svc, config(cohort, 8, 32, 2.0));
        let arrivals: Vec<(f64, u32)> = (0..n).map(|i| (i as f64 / rate, (i % 2) as u32)).collect();
        let r = p.run(&arrivals);
        prop_assert!(r.mean_fill <= 1.0 + 1e-9);
        prop_assert!(r.mean_fill > 0.0);
        // Each request at least pays one stage + response latency.
        let floor = 5e-6;
        prop_assert!(r.latency.mean >= floor, "mean {} < floor", r.latency.mean);
    }

    /// Determinism: identical inputs give identical reports.
    #[test]
    fn determinism(seed in any::<u64>(), n in 1u64..200) {
        let arrivals: Vec<(f64, u32)> = (0..n)
            .map(|i| (((i.wrapping_mul(seed | 1)) % 1000) as f64 * 1e-6, (i % 3) as u32))
            .collect();
        let mut sorted = arrivals.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let p = Pipeline::new(TableService::uniform(3, 2), config(16, 4, 8, 1.0));
        let a = p.run(&sorted);
        let b = p.run(&sorted);
        prop_assert_eq!(a, b);
    }

    /// With a formation timeout, no request waits forever: max latency is
    /// bounded by a generous function of the timeout, the cohort service
    /// time and the queueing backlog.
    #[test]
    fn timeout_bounds_worst_case(n in 1u64..100, cohort in 2u32..64) {
        let svc = TableService::uniform(1, 1);
        let p = Pipeline::new(svc, config(cohort, 4, 32, 1.0));
        // One request every 5 ms — far slower than the 1 ms timeout, so
        // every cohort launches by timeout with exactly one member.
        let arrivals: Vec<(f64, u32)> = (0..n).map(|i| (i as f64 * 5e-3, 0)).collect();
        let r = p.run(&arrivals);
        prop_assert_eq!(r.completed, n);
        prop_assert_eq!(r.timeout_launches, r.cohorts_launched);
        // reader timeout + formation timeout + service ≪ 5 ms
        prop_assert!(r.latency.max < 4e-3, "max latency {}", r.latency.max);
    }
}
