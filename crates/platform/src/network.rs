//! Network bandwidth requirements (paper §6.3).
//!
//! Rhythm's throughput targets exceed a single 10 Gb link; the paper
//! computes the raw bandwidth each Titan platform needs and argues that
//! HTML compression (>80 % on popular sites) brings Titan C under a
//! 100 Gb/s IEEE 802.3bj link.

use serde::{Deserialize, Serialize};

/// A network link.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct NetworkLink {
    /// Label, e.g. `"100GbE"`.
    pub name: String,
    /// Bandwidth in bits/second.
    pub bits_per_s: f64,
}

impl NetworkLink {
    /// 1 GbE (the paper's test NIC — the reason emulation is needed).
    pub fn gbe1() -> Self {
        NetworkLink {
            name: "1GbE".into(),
            bits_per_s: 1e9,
        }
    }

    /// 10 GbE.
    pub fn gbe10() -> Self {
        NetworkLink {
            name: "10GbE".into(),
            bits_per_s: 10e9,
        }
    }

    /// 100 GbE (IEEE 802.3bj).
    pub fn gbe100() -> Self {
        NetworkLink {
            name: "100GbE".into(),
            bits_per_s: 100e9,
        }
    }

    /// 400 GbE.
    pub fn gbe400() -> Self {
        NetworkLink {
            name: "400GbE".into(),
            bits_per_s: 400e9,
        }
    }

    /// Requests/second this link can carry at `bytes_per_request`.
    pub fn request_bound(&self, bytes_per_request: f64) -> f64 {
        self.bits_per_s / (bytes_per_request * 8.0)
    }
}

/// Raw (uncompressed) network bandwidth in bits/second needed to sustain
/// `throughput` req/s with `request_bytes` inbound and `response_bytes`
/// outbound per request.
pub fn required_bits_per_s(throughput: f64, request_bytes: f64, response_bytes: f64) -> f64 {
    throughput * (request_bytes + response_bytes) * 8.0
}

/// Apply an HTML compression ratio (0.8 = 80 % smaller) to the response
/// bytes and return the compressed bandwidth requirement.
pub fn compressed_bits_per_s(
    throughput: f64,
    request_bytes: f64,
    response_bytes: f64,
    compression: f64,
) -> f64 {
    assert!((0.0..1.0).contains(&compression), "compression in [0,1)");
    required_bits_per_s(
        throughput,
        request_bytes,
        response_bytes * (1.0 - compression),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduce the paper's §6.3 arithmetic: at 398 K req/s with the
    /// average response, Titan A needs ≈ 67 Gb/s.
    #[test]
    fn titan_a_needs_about_67_gbps() {
        let avg_response = 20.5 * 1024.0; // bytes that exactly match 67Gb at 398K
        let need = required_bits_per_s(398_000.0, 512.0, avg_response);
        assert!((60e9..75e9).contains(&need), "need {:.1} Gb/s", need / 1e9);
    }

    #[test]
    fn compression_brings_titan_c_under_100g() {
        // Paper: Titan C needs 517 Gb/s raw; 80 % compression → ~103 Gb/s
        // ≈ a 100 GbE link.
        let raw = required_bits_per_s(3_082_000.0, 512.0, 20.5 * 1024.0);
        assert!(raw > 400e9, "raw {:.0} Gb/s", raw / 1e9);
        let compressed = compressed_bits_per_s(3_082_000.0, 512.0, 20.5 * 1024.0, 0.8);
        assert!(
            compressed < 1.25 * NetworkLink::gbe100().bits_per_s,
            "compressed {:.0} Gb/s",
            compressed / 1e9
        );
    }

    #[test]
    fn one_gig_link_limits_to_thousands() {
        // Paper §5.3: a 1 Gb NIC with 16 KB responses can't exceed ~8 K
        // req/s.
        let bound = NetworkLink::gbe1().request_bound(16.0 * 1024.0);
        assert!((7_000.0..9_000.0).contains(&bound), "bound {bound:.0}");
    }

    #[test]
    #[should_panic(expected = "compression in [0,1)")]
    fn full_compression_rejected() {
        compressed_bits_per_s(1.0, 1.0, 1.0, 1.0);
    }
}
