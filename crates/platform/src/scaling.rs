//! Many-core scaling analysis (paper §6.2).
//!
//! Could one simply replicate general purpose cores to match Rhythm's
//! throughput? The paper assumes idealized linear scaling of
//! single-thread throughput, a fixed dynamic power per core (1 W per ARM
//! core, 10 W per i5 core), and asks how much power is left for the
//! "uncore" (interconnect, memory controllers, I/O) before the scaled
//! system draws more than the Titan platform.

use serde::{Deserialize, Serialize};

/// A scalable core type.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CoreType {
    /// Name, e.g. `"ARM A9 core"`.
    pub name: String,
    /// Single-core (single-thread) throughput in requests/second.
    pub per_core_tput: f64,
    /// Dynamic power per core in Watts.
    pub per_core_w: f64,
}

impl CoreType {
    /// The paper's 1 W, 1.2 GHz ARM core: single-worker A9 throughput.
    pub fn arm_a9(single_core_tput: f64) -> Self {
        CoreType {
            name: "ARM A9 core".into(),
            per_core_tput: single_core_tput,
            per_core_w: 1.0,
        }
    }

    /// The paper's 10 W i5 core: single-worker i5 throughput.
    pub fn core_i5(single_core_tput: f64) -> Self {
        CoreType {
            name: "Core i5 core".into(),
            per_core_tput: single_core_tput,
            per_core_w: 10.0,
        }
    }
}

/// Outcome of scaling a core type to a target throughput.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ScalingResult {
    /// Core type scaled.
    pub core: CoreType,
    /// Target throughput (the Titan platform's).
    pub target_tput: f64,
    /// Cores required under idealized linear scaling.
    pub cores_needed: u32,
    /// Dynamic power of the scaled cores (W).
    pub scaled_power_w: f64,
    /// The Titan platform's dynamic power budget (W).
    pub budget_w: f64,
    /// Power left for uncore scaling overhead (may be negative).
    pub uncore_headroom_w: f64,
    /// Headroom as a fraction of the budget.
    pub uncore_fraction: f64,
}

/// Scale `core` to match `target_tput` against a `budget_w` dynamic
/// power budget.
pub fn scale_to_match(core: &CoreType, target_tput: f64, budget_w: f64) -> ScalingResult {
    let cores_needed = (target_tput / core.per_core_tput).ceil() as u32;
    let scaled_power_w = cores_needed as f64 * core.per_core_w;
    let uncore_headroom_w = budget_w - scaled_power_w;
    ScalingResult {
        core: core.clone(),
        target_tput,
        cores_needed,
        scaled_power_w,
        budget_w,
        uncore_headroom_w,
        uncore_fraction: uncore_headroom_w / budget_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduce the paper's §6.2 numbers for Titan B: 192 ARM cores /
    /// 21 i5 cores, 40 W (21 %) / 22 W (10 %) headroom on 232 W.
    #[test]
    fn titan_b_paper_numbers() {
        let arm = CoreType::arm_a9(8_000.0);
        let r = scale_to_match(&arm, 1_535_000.0, 232.0);
        assert_eq!(r.cores_needed, 192);
        assert!((r.scaled_power_w - 192.0).abs() < 1e-9);
        assert!((r.uncore_headroom_w - 40.0).abs() < 1e-9);
        assert!((r.uncore_fraction - 0.1724).abs() < 0.05);

        let i5 = CoreType::core_i5(75_000.0);
        let r = scale_to_match(&i5, 1_535_000.0, 232.0);
        assert_eq!(r.cores_needed, 21);
        assert!((r.scaled_power_w - 210.0).abs() < 1e-9);
        assert!((r.uncore_headroom_w - 22.0).abs() < 1e-9);
    }

    /// Titan C: 386 ARM cores / 42 i5 cores (the paper rounds to 385/41
    /// with its unrounded throughputs); the scaled systems exceed
    /// Titan C's 211 W by a wide margin.
    #[test]
    fn titan_c_exceeds_budget() {
        let arm = CoreType::arm_a9(8_000.0);
        let r = scale_to_match(&arm, 3_082_000.0, 211.0);
        assert!((385..=386).contains(&r.cores_needed), "{}", r.cores_needed);
        assert!(r.uncore_headroom_w < 0.0, "scaled ARM exceeds Titan C");

        let i5 = CoreType::core_i5(75_000.0);
        let r = scale_to_match(&i5, 3_082_000.0, 211.0);
        assert!((41..=42).contains(&r.cores_needed));
        assert!(r.uncore_headroom_w < -150.0);
    }

    #[test]
    fn exact_multiples_do_not_round_up() {
        let c = CoreType::arm_a9(1000.0);
        assert_eq!(scale_to_match(&c, 5000.0, 10.0).cores_needed, 5);
        assert_eq!(scale_to_match(&c, 5001.0, 10.0).cores_needed, 6);
    }
}
