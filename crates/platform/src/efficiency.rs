//! Throughput–efficiency analysis (paper Figures 1, 8 and 10).
//!
//! Every platform becomes a point: y = throughput normalized to the
//! Core i7 (8 workers), x = requests/Joule normalized to the ARM A9
//! (2 workers). The paper's "desired operating range" is the quadrant at
//! or above both baselines.

use serde::{Deserialize, Serialize};

/// Measured/modelled outcome for one platform (absolute units).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct PlatformResult {
    /// Display name.
    pub name: String,
    /// Requests/second.
    pub throughput: f64,
    /// Mean latency in seconds.
    pub latency_s: f64,
    /// Idle wall power (W).
    pub idle_w: f64,
    /// Loaded wall power (W).
    pub wall_w: f64,
}

impl PlatformResult {
    /// Dynamic power (loaded − idle).
    pub fn dynamic_w(&self) -> f64 {
        self.wall_w - self.idle_w
    }

    /// Requests per Joule of wall power.
    pub fn reqs_per_joule_wall(&self) -> f64 {
        self.throughput / self.wall_w
    }

    /// Requests per Joule of dynamic power.
    pub fn reqs_per_joule_dynamic(&self) -> f64 {
        self.throughput / self.dynamic_w()
    }
}

/// Which power basis an efficiency plot uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PowerBasis {
    /// Total wall power (cost-of-ownership view).
    Wall,
    /// Dynamic power (marginal-cost-of-load view).
    Dynamic,
}

/// One normalized design-space point (Figure 8 axes).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Platform name.
    pub name: String,
    /// Efficiency normalized to the efficiency baseline (x-axis).
    pub efficiency_norm: f64,
    /// Throughput normalized to the throughput baseline (y-axis).
    pub throughput_norm: f64,
    /// In the desired operating range (both ≥ 1)?
    pub in_desired_range: bool,
}

/// Normalize results into design-space points.
///
/// # Panics
///
/// Panics if either baseline name is missing from `results`.
pub fn design_points(
    results: &[PlatformResult],
    throughput_baseline: &str,
    efficiency_baseline: &str,
    basis: PowerBasis,
) -> Vec<DesignPoint> {
    let eff = |r: &PlatformResult| match basis {
        PowerBasis::Wall => r.reqs_per_joule_wall(),
        PowerBasis::Dynamic => r.reqs_per_joule_dynamic(),
    };
    let tput_base = results
        .iter()
        .find(|r| r.name == throughput_baseline)
        .unwrap_or_else(|| panic!("throughput baseline {throughput_baseline:?} missing"))
        .throughput;
    let eff_base = eff(results
        .iter()
        .find(|r| r.name == efficiency_baseline)
        .unwrap_or_else(|| panic!("efficiency baseline {efficiency_baseline:?} missing")));
    results
        .iter()
        .map(|r| {
            let e = eff(r) / eff_base;
            let t = r.throughput / tput_base;
            DesignPoint {
                name: r.name.clone(),
                efficiency_norm: e,
                throughput_norm: t,
                in_desired_range: e >= 1.0 && t >= 1.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, tput: f64, idle: f64, wall: f64) -> PlatformResult {
        PlatformResult {
            name: name.into(),
            throughput: tput,
            latency_s: 1e-3,
            idle_w: idle,
            wall_w: wall,
        }
    }

    #[test]
    fn baselines_are_unity() {
        let results = vec![
            result("i7", 377_000.0, 45.0, 156.0),
            result("a9", 16_000.0, 2.0, 4.5),
        ];
        let pts = design_points(&results, "i7", "a9", PowerBasis::Wall);
        assert!((pts[0].throughput_norm - 1.0).abs() < 1e-12);
        assert!((pts[1].efficiency_norm - 1.0).abs() < 1e-12);
        assert!(!pts[1].in_desired_range, "a9 has low throughput");
    }

    #[test]
    fn desired_range_detection() {
        let results = vec![
            result("i7", 100.0, 10.0, 110.0),
            result("a9", 10.0, 1.0, 2.0),
            result("titan", 800.0, 50.0, 120.0),
        ];
        let pts = design_points(&results, "i7", "a9", PowerBasis::Dynamic);
        let titan = pts.iter().find(|p| p.name == "titan").unwrap();
        assert!(titan.throughput_norm > 1.0);
        assert!(titan.efficiency_norm > 1.0);
        assert!(titan.in_desired_range);
    }

    #[test]
    fn wall_vs_dynamic_differ() {
        let r = result("x", 100.0, 50.0, 100.0);
        assert_eq!(r.reqs_per_joule_wall(), 1.0);
        assert_eq!(r.reqs_per_joule_dynamic(), 2.0);
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn missing_baseline_panics() {
        design_points(&[], "nope", "nah", PowerBasis::Wall);
    }
}
