//! Platform presets calibrated from the paper's Tables 1 and 3.
//!
//! We cannot measure Watts at a wall outlet, so the paper's own
//! Kill-A-Watt measurements become model parameters. CPU compute
//! capability is expressed as *effective instructions per second*
//! (`eff_ips`), derived from the paper's measured throughput times its
//! measured instructions/request (Table 3 × Table 2 average of 429,563):
//! throughput ratios between platforms then reproduce the paper's, while
//! absolute request rates follow from *our* measured instruction counts.

use serde::{Deserialize, Serialize};

/// Average dynamic x86 instructions per request in the paper (Table 2).
pub const PAPER_AVG_INSTRUCTIONS: f64 = 429_563.0;

/// A general purpose CPU configuration (one worker-count operating point).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CpuPreset {
    /// Display name, e.g. `"Core i7 8 workers"`.
    pub name: String,
    /// Worker threads in this operating point.
    pub workers: u32,
    /// Physical cores.
    pub cores: u32,
    /// Clock in Hz.
    pub clock_hz: f64,
    /// Effective instructions/second at this worker count (calibrated).
    pub eff_ips: f64,
    /// Idle wall power in Watts (paper Table 3).
    pub idle_w: f64,
    /// Loaded wall power in Watts (paper Table 3).
    pub wall_w: f64,
    /// Paper-measured throughput in requests/second (reference only).
    pub paper_tput: f64,
    /// Paper-measured mean latency in seconds (reference only).
    pub paper_latency_s: f64,
}

impl CpuPreset {
    /// Dynamic (loaded minus idle) power.
    pub fn dynamic_w(&self) -> f64 {
        self.wall_w - self.idle_w
    }

    /// Modelled throughput for a workload of `instructions_per_request`.
    pub fn throughput(&self, instructions_per_request: f64) -> f64 {
        self.eff_ips / instructions_per_request
    }

    /// Modelled single-request latency: one request on one worker.
    pub fn latency_s(&self, instructions_per_request: f64) -> f64 {
        instructions_per_request / (self.eff_ips / self.workers as f64)
    }

    #[allow(clippy::too_many_arguments)] // one row of the calibration table
    fn calibrated(
        name: &str,
        workers: u32,
        cores: u32,
        clock_ghz: f64,
        paper_tput: f64,
        paper_latency_ms: f64,
        idle_w: f64,
        wall_w: f64,
    ) -> Self {
        CpuPreset {
            name: name.to_string(),
            workers,
            cores,
            clock_hz: clock_ghz * 1e9,
            eff_ips: paper_tput * PAPER_AVG_INSTRUCTIONS,
            idle_w,
            wall_w,
            paper_tput,
            paper_latency_s: paper_latency_ms * 1e-3,
        }
    }

    /// Core i5-3570, one worker (Table 3 row 1).
    pub fn i5_1w() -> Self {
        Self::calibrated("Core i5 1 worker", 1, 4, 3.4, 75_000.0, 0.016, 47.0, 67.0)
    }

    /// Core i5-3570, four workers.
    pub fn i5_4w() -> Self {
        Self::calibrated("Core i5 4 workers", 4, 4, 3.4, 282_000.0, 0.016, 47.0, 98.0)
    }

    /// Core i7-3770, four workers.
    pub fn i7_4w() -> Self {
        Self::calibrated(
            "Core i7 4 workers",
            4,
            4,
            3.4,
            331_000.0,
            0.014,
            45.0,
            147.0,
        )
    }

    /// Core i7-3770, eight workers (the paper's throughput baseline).
    pub fn i7_8w() -> Self {
        Self::calibrated(
            "Core i7 8 workers",
            8,
            4,
            3.4,
            377_000.0,
            0.014,
            45.0,
            156.0,
        )
    }

    /// ARM Cortex A9 (OMAP4460), one worker.
    pub fn a9_1w() -> Self {
        Self::calibrated("ARM A9 1 worker", 1, 2, 1.2, 8_000.0, 0.176, 2.0, 3.4)
    }

    /// ARM Cortex A9, two workers (the paper's efficiency baseline).
    pub fn a9_2w() -> Self {
        Self::calibrated("ARM A9 2 workers", 2, 2, 1.2, 16_000.0, 0.176, 2.0, 4.5)
    }

    /// All six CPU operating points of Table 3.
    pub fn all() -> Vec<CpuPreset> {
        vec![
            Self::i5_1w(),
            Self::i5_4w(),
            Self::i7_4w(),
            Self::i7_8w(),
            Self::a9_1w(),
            Self::a9_2w(),
        ]
    }
}

/// The three emulated Titan platforms (paper §5.3.2).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TitanPlatform {
    /// Remote backend over PCIe 3.0.
    A,
    /// Integrated NIC and on-device backend (no PCIe on the data path).
    B,
    /// B plus the response transpose offloaded from the device.
    C,
}

/// Power figures for a Titan platform (paper Table 3).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TitanPreset {
    /// Which platform.
    pub platform: TitanPlatform,
    /// Display name.
    pub name: String,
    /// Idle wall power in Watts.
    pub idle_w: f64,
    /// Loaded wall power in Watts.
    pub wall_w: f64,
    /// Paper-measured throughput (reference only).
    pub paper_tput: f64,
    /// Paper-measured latency in seconds (reference only).
    pub paper_latency_s: f64,
}

impl TitanPreset {
    /// Dynamic power.
    pub fn dynamic_w(&self) -> f64 {
        self.wall_w - self.idle_w
    }

    /// Preset for a platform.
    pub fn of(platform: TitanPlatform) -> Self {
        match platform {
            TitanPlatform::A => TitanPreset {
                platform,
                name: "Titan A".into(),
                idle_w: 74.0,
                wall_w: 226.0,
                paper_tput: 398_000.0,
                paper_latency_s: 86e-3,
            },
            TitanPlatform::B => TitanPreset {
                platform,
                name: "Titan B".into(),
                idle_w: 74.0,
                wall_w: 306.0,
                paper_tput: 1_535_000.0,
                paper_latency_s: 24e-3,
            },
            TitanPlatform::C => TitanPreset {
                platform,
                name: "Titan C".into(),
                idle_w: 74.0,
                wall_w: 285.0,
                paper_tput: 3_082_000.0,
                paper_latency_s: 10e-3,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_paper_throughput() {
        // With the paper's own instruction count, the model reproduces the
        // paper's measured throughput by construction.
        for p in CpuPreset::all() {
            let t = p.throughput(PAPER_AVG_INSTRUCTIONS);
            assert!(
                (t - p.paper_tput).abs() / p.paper_tput < 1e-9,
                "{}: {} vs {}",
                p.name,
                t,
                p.paper_tput
            );
        }
    }

    #[test]
    fn throughput_ratios_match_paper_claims() {
        // "the ARM achieves only 4% of the i7's throughput".
        let ratio = CpuPreset::a9_2w().paper_tput / CpuPreset::i7_8w().paper_tput;
        assert!((ratio - 0.04).abs() < 0.01, "ratio {ratio}");
        // "the i5 … delivering 75% of the i7's throughput".
        let ratio = CpuPreset::i5_4w().paper_tput / CpuPreset::i7_8w().paper_tput;
        assert!((ratio - 0.75).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn dynamic_power_positive() {
        for p in CpuPreset::all() {
            assert!(p.dynamic_w() > 0.0, "{}", p.name);
        }
        for t in [TitanPlatform::A, TitanPlatform::B, TitanPlatform::C] {
            assert!(TitanPreset::of(t).dynamic_w() > 0.0);
        }
    }

    #[test]
    fn latency_scales_with_instructions() {
        let p = CpuPreset::i7_8w();
        assert!(p.latency_s(1e6) > p.latency_s(1e5));
        // The paper's latency is within an order of magnitude of the
        // single-worker service-time model.
        let modelled = p.latency_s(PAPER_AVG_INSTRUCTIONS);
        assert!(modelled < 10.0 * p.paper_latency_s);
    }

    #[test]
    fn more_workers_more_throughput() {
        assert!(CpuPreset::i5_4w().eff_ips > CpuPreset::i5_1w().eff_ips);
        assert!(CpuPreset::i7_8w().eff_ips > CpuPreset::i7_4w().eff_ips);
        assert!(CpuPreset::a9_2w().eff_ips > CpuPreset::a9_1w().eff_ips);
    }
}
