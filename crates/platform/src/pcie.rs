//! PCI Express bandwidth model (paper §6.1.1, Figure 9).
//!
//! On Titan A every request moves its raw request, backend request,
//! backend response, and final response across the bus; the throughput
//! bound is simply usable bandwidth over bytes moved per request. The
//! paper measures 83–95 % of this bound (small transfer chunks don't
//! reach peak), which we expose as an achievable-fraction parameter.

use serde::{Deserialize, Serialize};

/// A PCIe link model.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct PcieModel {
    /// Generation label.
    pub name: String,
    /// Usable unidirectional-equivalent bandwidth in bytes/second.
    pub usable_bw: f64,
    /// Fraction of peak achievable with Rhythm-sized chunks (the paper
    /// observes 0.83–0.95; we use the midpoint by default).
    pub achievable_fraction: f64,
}

impl PcieModel {
    /// PCIe 3.0 x16: 12 GB/s usable (the paper's figure).
    pub fn gen3() -> Self {
        PcieModel {
            name: "PCIe 3.0 x16".into(),
            usable_bw: 12e9,
            achievable_fraction: 0.89,
        }
    }

    /// PCIe 4.0 x16: 24 GB/s usable (paper: "doubles usable bandwidth to
    /// 24 GB/s").
    pub fn gen4() -> Self {
        PcieModel {
            name: "PCIe 4.0 x16".into(),
            usable_bw: 24e9,
            achievable_fraction: 0.89,
        }
    }

    /// Hard throughput bound in requests/second for `bytes_per_request`
    /// moved over the bus.
    pub fn bound(&self, bytes_per_request: f64) -> f64 {
        self.usable_bw / bytes_per_request
    }

    /// Achieved throughput: the compute-side rate clipped to the
    /// achievable fraction of the bus bound.
    pub fn achieved(&self, compute_tput: f64, bytes_per_request: f64) -> f64 {
        compute_tput.min(self.achievable_fraction * self.bound(bytes_per_request))
    }
}

/// Bytes a Titan A request moves across the bus (paper §6.1.1): 1 KB
/// request buffer + 1 KB backend request + 4 KB backend response +
/// the response buffer.
pub fn titan_a_bytes_per_request(response_buffer_bytes: u32, backend_requests: u32) -> f64 {
    let backend = backend_requests as f64 * (1024.0 + 4096.0);
    1024.0 + backend + response_buffer_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_average_bound_magnitude() {
        // Paper: 1 KB + 1 KB + 4 KB + 26.4 KB average ⇒ ~370 K req/s
        // bound on 12 GB/s.
        let bytes = titan_a_bytes_per_request((26.4 * 1024.0) as u32, 1);
        let bound = PcieModel::gen3().bound(bytes);
        assert!(
            (330_000.0..450_000.0).contains(&bound),
            "bound {bound:.0} req/s"
        );
    }

    #[test]
    fn gen4_doubles_gen3() {
        let b3 = PcieModel::gen3().bound(32768.0);
        let b4 = PcieModel::gen4().bound(32768.0);
        assert!((b4 / b3 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn achieved_clips_to_fraction() {
        let m = PcieModel::gen3();
        let bound = m.bound(32768.0);
        assert_eq!(m.achieved(1e9, 32768.0), m.achievable_fraction * bound);
        assert_eq!(m.achieved(10.0, 32768.0), 10.0, "compute-bound case");
    }

    #[test]
    fn backend_free_types_move_fewer_bytes() {
        let with = titan_a_bytes_per_request(8192, 2);
        let without = titan_a_bytes_per_request(8192, 0);
        assert_eq!(with - without, 2.0 * 5120.0);
    }
}
