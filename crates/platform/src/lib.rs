//! # rhythm-platform
//!
//! Server-platform models for the Rhythm evaluation: everything the paper
//! measures on physical hardware that we must parameterize instead.
//!
//! * [`presets`] — the Core i5/i7, ARM A9 and Titan A/B/C operating
//!   points; CPU compute is calibrated to *effective instructions per
//!   second* from the paper's Table 3, power comes from the paper's
//!   Kill-A-Watt measurements;
//! * [`pcie`] — the PCIe 3.0/4.0 bandwidth bound that throttles Titan A
//!   (Figure 9);
//! * [`network`] — link bandwidth requirements and compression analysis
//!   (§6.3);
//! * [`efficiency`] — the throughput-vs-requests/Joule design space of
//!   Figures 1, 8 and 10;
//! * [`scaling`] — the many-core replication analysis of §6.2.
//!
//! ```
//! use rhythm_platform::presets::CpuPreset;
//! use rhythm_platform::efficiency::{design_points, PlatformResult, PowerBasis};
//!
//! let i7 = CpuPreset::i7_8w();
//! let a9 = CpuPreset::a9_2w();
//! let results: Vec<PlatformResult> = [&i7, &a9].iter().map(|p| PlatformResult {
//!     name: p.name.clone(),
//!     throughput: p.throughput(430_000.0),
//!     latency_s: p.latency_s(430_000.0),
//!     idle_w: p.idle_w,
//!     wall_w: p.wall_w,
//! }).collect();
//! let pts = design_points(&results, &i7.name, &a9.name, PowerBasis::Wall);
//! assert!(pts[1].throughput_norm < 0.1, "the A9 is far below the i7");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod efficiency;
pub mod network;
pub mod pcie;
pub mod presets;
pub mod scaling;

pub use efficiency::{design_points, DesignPoint, PlatformResult, PowerBasis};
pub use pcie::PcieModel;
pub use presets::{CpuPreset, TitanPlatform, TitanPreset};
pub use scaling::{scale_to_match, CoreType, ScalingResult};
