//! A live TCP banking server built from the Rhythm substrates: the
//! `rhythm-http` parser, the native (CPU-path) banking handlers, and the
//! shared session array.
//!
//! By default it runs a self-contained demo: it binds an ephemeral port,
//! spawns a client that logs in, fetches pages and logs out, then exits.
//! Pass `--serve` to keep listening so you can drive it with curl:
//!
//! ```sh
//! cargo run --release --example banking_server -- --serve
//! # in another shell (replace PORT):
//! curl -s -X POST 'http://127.0.0.1:PORT/bank/login.php' -d 'userid=7'
//! ```

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use rhythm_banking::prelude::*;
use rhythm_http::{HttpRequest, ParseError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let serve_forever = std::env::args().any(|a| a == "--serve");

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    println!("rhythm banking server listening on http://{addr}/bank/");

    if serve_forever {
        let mut state = ServerState::new();
        for stream in listener.incoming() {
            match stream {
                Ok(s) => {
                    if let Err(e) = state.handle_connection(s) {
                        eprintln!("connection error: {e}");
                    }
                }
                Err(e) => eprintln!("accept error: {e}"),
            }
        }
        return Ok(());
    }

    // Demo mode: drive ourselves with a client thread.
    let client = std::thread::spawn(move || -> Result<(), std::io::Error> {
        let send = |req: String| -> Result<String, std::io::Error> {
            let mut s = TcpStream::connect(addr)?;
            s.write_all(req.as_bytes())?;
            let mut buf = Vec::new();
            s.read_to_end(&mut buf)?;
            Ok(String::from_utf8_lossy(&buf).into_owned())
        };

        let login = send(
            "POST /bank/login.php HTTP/1.1\r\nHost: demo\r\nContent-Length: 8\r\n\r\nuserid=7"
                .into(),
        )?;
        let token: u32 = login
            .lines()
            .find(|l| l.starts_with("Set-Cookie: SID="))
            .and_then(|l| l["Set-Cookie: SID=".len()..].trim().parse().ok())
            .expect("login sets a session cookie");
        println!("[client] logged in, session token {token}");

        for page in ["account_summary.php", "profile.php", "transfer.php"] {
            let resp = send(format!(
                "GET /bank/{page}?userid=7 HTTP/1.1\r\nHost: demo\r\nCookie: SID={token}\r\n\r\n"
            ))?;
            let first = resp.lines().next().unwrap_or("");
            let bytes = resp.len();
            println!("[client] {page:<22} -> {first} ({bytes} bytes)");
            assert!(first.contains("200"), "expected 200 for {page}");
        }

        let logout = send(format!(
            "GET /bank/logout.php?userid=7 HTTP/1.1\r\nHost: demo\r\nCookie: SID={token}\r\n\r\n"
        ))?;
        println!(
            "[client] logout                 -> {}",
            logout.lines().next().unwrap_or("")
        );
        Ok(())
    });

    let mut state = ServerState::new();
    for _ in 0..5 {
        let (stream, _) = listener.accept()?;
        state.handle_connection(stream)?;
    }
    client.join().expect("client thread")?;
    println!(
        "demo complete: {} live sessions remain (logout cleaned up)",
        state.sessions.len()
    );
    Ok(())
}

/// Server-side state: the bank store and the session array.
struct ServerState {
    store: BankStore,
    sessions: SessionArrayHost,
}

impl ServerState {
    fn new() -> Self {
        ServerState {
            store: BankStore::generate(256, 1),
            sessions: SessionArrayHost::new(65536, 0x5EED_0001),
        }
    }

    fn handle_connection(&mut self, mut stream: TcpStream) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(1024);
        let mut chunk = [0u8; 1024];
        let response = loop {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Ok(()); // peer went away
            }
            buf.extend_from_slice(&chunk[..n]);
            match HttpRequest::parse(&buf) {
                Ok(req) => break self.respond(&req),
                Err(ParseError::Truncated) | Err(ParseError::BodyTooShort { .. }) => continue,
                Err(e) => break error_response(400, &format!("bad request: {e}")),
            }
        };
        stream.write_all(&response)?;
        Ok(())
    }

    fn respond(&mut self, req: &HttpRequest) -> Vec<u8> {
        let Some(ty) = RequestType::from_file_name(req.file_name()) else {
            return error_response(404, "unknown endpoint");
        };
        let token = req
            .cookies
            .get("SID")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut params = [0u32; 4];
        params[0] = req.params.get_u32("userid").unwrap_or(0);
        params[1] = req.params.get_u32("a").unwrap_or(0);
        let banking = BankingRequest::new(ty, token, params);
        handle_native(&banking, &self.store, &mut self.sessions)
    }
}

fn error_response(status: u16, msg: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} Error\nContent-Type: text/plain\nContent-Length: {}\n\n{msg}",
        msg.len()
    )
    .into_bytes()
}
