//! A live TCP banking server on the Rhythm networked front end: the
//! non-blocking `rhythm-net` reader feeds per-type cohorts to either the
//! native (CPU) handlers or the full SIMT device pipeline.
//!
//! By default it runs a self-contained demo: it binds an ephemeral port,
//! spawns a client that logs in, fetches pages over one keep-alive
//! connection and logs out, then exits. Pass `--serve` to keep listening
//! so you can drive it with curl, `--simt` to serve cohorts on the
//! simulated data-parallel device instead of the scalar path,
//! `--shards <n>` to run the multi-reactor front end (each shard owns its
//! connections, cohort pool, and device), and `--stats-interval <secs>`
//! to print a one-line live summary (rps, p99 latency, shed counts) from
//! the telemetry plane every interval:
//!
//! ```sh
//! cargo run --release --example banking_server -- --serve --simt --shards 4 --stats-interval 2
//! # in another shell (replace PORT):
//! curl -s -X POST 'http://127.0.0.1:PORT/bank/login.php' -d 'userid=7'
//! curl -s 'http://127.0.0.1:PORT/metrics'   # Prometheus exposition
//! curl -s 'http://127.0.0.1:PORT/healthz'   # liveness + accounting
//! curl -s 'http://127.0.0.1:PORT/trace'     # Chrome trace JSON
//! ```
//!
//! Either way the front end is the same: requests are parsed off
//! non-blocking sockets, batched into per-type cohorts (Free →
//! PartiallyFull → Full → Busy), launched on fill or on the formation
//! timeout, and the responses are transposed back onto their connections.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rhythm_banking::prelude::*;
use rhythm_net::{
    read_response, send_request, CohortHandler, NetConfig, NetServer, NetStats, ShardedServer,
    Telemetry,
};
use rhythm_obs::StreamingHistogram;
use rhythm_simt::gpu::{Gpu, GpuConfig};

const NUM_USERS: u32 = 256;
const SESSION_CAPACITY: u32 = 65536;
const SESSION_SALT: u32 = 0x5EED_0001;

fn config() -> NetConfig {
    NetConfig {
        cohort_size: 32,
        fill_timeout: Duration::from_millis(2),
        ..NetConfig::default()
    }
}

fn scalar_handler() -> ScalarHandler {
    ScalarHandler::new(
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(SESSION_CAPACITY, SESSION_SALT),
    )
}

fn simt_handler() -> SimtHandler {
    let opts = CohortOptions {
        session_capacity: SESSION_CAPACITY,
        session_salt: SESSION_SALT,
        ..CohortOptions::default()
    };
    SimtHandler::new(
        Workload::build(),
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(SESSION_CAPACITY, SESSION_SALT),
        Gpu::new(GpuConfig::gtx_titan()),
        opts,
    )
}

/// Print a one-line live summary every `interval` from the telemetry
/// plane: request rate over the interval, p99 latency from the merged
/// live histograms, and the accounting tail (shed, in-cohort, conns).
fn spawn_stats_printer(telemetry: Arc<Telemetry>, interval: Duration) {
    std::thread::spawn(move || {
        let mut last_requests = 0u64;
        loop {
            std::thread::sleep(interval);
            let total = telemetry.total();
            let rps = (total.stats.requests - last_requests) as f64 / interval.as_secs_f64();
            last_requests = total.stats.requests;
            let mut merged: Option<StreamingHistogram> = None;
            for (_, hist) in telemetry.latency_merged() {
                match &mut merged {
                    Some(m) => m.merge(&hist),
                    None => merged = Some(hist),
                }
            }
            let p99_ms = merged.map_or(0.0, |m| m.quantile(0.99) * 1e3);
            println!(
                "[stats] rps {rps:8.1} | p99 {p99_ms:7.3} ms | requests {} | shed {} | \
                 in_cohort {} | conns {}",
                total.stats.requests,
                total.shed_total(),
                total.in_cohort,
                total.connections,
            );
        }
    });
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let serve_forever = args.iter().any(|a| a == "--serve");
    let simt = args.iter().any(|a| a == "--simt");
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let stats_interval: u64 = args
        .iter()
        .position(|a| a == "--stats-interval")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    if serve_forever {
        // Serve until killed. The run loop polls; ctrl-C exits the
        // process, so the stop flag never fires here.
        let stop = AtomicBool::new(false);
        let banner = |addr: std::net::SocketAddr, path: &str| {
            println!("rhythm banking server ({path} path, {shards} shards) on http://{addr}/bank/");
            println!("  live endpoints: /metrics /healthz /trace");
        };
        let stats = |telemetry: &Arc<Telemetry>| {
            if stats_interval > 0 {
                spawn_stats_printer(Arc::clone(telemetry), Duration::from_secs(stats_interval));
            }
        };
        if shards > 1 {
            // Multi-reactor front end: each shard owns its connections,
            // cohort pool, and handler (its own device on the SIMT path).
            if simt {
                // One telemetry plane up front so each handler's device
                // counters land in its own shard's registry.
                let telemetry = Arc::new(Telemetry::new(shards));
                let handlers: Vec<_> = (0..shards)
                    .map(|i| simt_handler().with_metrics(telemetry.device(i)))
                    .collect();
                let server = ShardedServer::bind("127.0.0.1:0", config(), handlers)?
                    .with_telemetry(&telemetry);
                banner(server.local_addr()?, "SIMT cohort");
                stats(server.telemetry());
                server.run(&stop);
            } else {
                let handlers: Vec<_> = (0..shards).map(|_| scalar_handler()).collect();
                let server = ShardedServer::bind("127.0.0.1:0", config(), handlers)?;
                banner(server.local_addr()?, "scalar");
                stats(server.telemetry());
                server.run(&stop);
            }
        } else if simt {
            let telemetry = Arc::new(Telemetry::new(1));
            let handler = simt_handler().with_metrics(telemetry.device(0));
            let server =
                NetServer::bind("127.0.0.1:0", config(), handler)?.with_telemetry(&telemetry);
            banner(server.local_addr()?, "SIMT cohort");
            stats(server.telemetry());
            server.run(&stop);
        } else {
            let server = NetServer::bind("127.0.0.1:0", config(), scalar_handler())?;
            banner(server.local_addr()?, "scalar");
            stats(server.telemetry());
            server.run(&stop);
        }
        return Ok(());
    }

    // Demo mode: run the server on a thread and drive it with one
    // keep-alive client connection.
    if simt {
        let (stats, handler) = demo(simt_handler())?;
        println!(
            "demo complete: {} requests in {} device cohorts (mean fill {:.2}), \
             {:.3} ms modelled device time, {} live sessions remain",
            stats.requests,
            handler.cohorts,
            stats.mean_fill(),
            handler.device_time_s * 1e3,
            handler.sessions().len()
        );
    } else {
        let (stats, handler) = demo(scalar_handler())?;
        println!(
            "demo complete: {} requests in {} cohorts (mean fill {:.2}), \
             {} live sessions remain (logout cleaned up)",
            stats.requests,
            stats.cohorts,
            stats.mean_fill(),
            handler.sessions().len()
        );
    }
    Ok(())
}

fn demo<H: CohortHandler + Send + 'static>(
    handler: H,
) -> Result<(NetStats, H), Box<dyn std::error::Error>> {
    let server = NetServer::bind("127.0.0.1:0", config(), handler)?;
    let addr = server.local_addr()?;
    println!("rhythm banking server listening on http://{addr}/bank/");

    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag));

    // One keep-alive connection for the whole conversation.
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut carry = Vec::new();

    send_request(
        &mut conn,
        b"POST /bank/login.php HTTP/1.1\r\nHost: demo\r\nContent-Length: 8\r\n\r\nuserid=7",
    )?;
    let login = read_response(&mut conn, &mut carry)?;
    assert_eq!(login.status, 200, "login must succeed");
    let token: u32 = login
        .header("Set-Cookie")
        .and_then(|v| v.strip_prefix("SID=").map(|t| t.trim().to_string()))
        .and_then(|t| t.parse().ok())
        .expect("login sets a session cookie");
    println!("[client] logged in, session token {token}");

    for page in ["account_summary.php", "profile.php", "transfer.php"] {
        send_request(
            &mut conn,
            format!(
                "GET /bank/{page}?userid=7 HTTP/1.1\r\nHost: demo\r\nCookie: SID={token}\r\n\r\n"
            )
            .as_bytes(),
        )?;
        let resp = read_response(&mut conn, &mut carry)?;
        println!(
            "[client] {page:<22} -> {} ({} bytes)",
            resp.status,
            resp.bytes.len()
        );
        assert_eq!(resp.status, 200, "expected 200 for {page}");
    }

    send_request(
        &mut conn,
        format!(
            "GET /bank/logout.php?userid=7 HTTP/1.1\r\nHost: demo\r\nCookie: SID={token}\r\n\r\n"
        )
        .as_bytes(),
    )?;
    let logout = read_response(&mut conn, &mut carry)?;
    println!("[client] logout                 -> {}", logout.status);
    assert_eq!(logout.status, 200);
    drop(conn);

    stop.store(true, Ordering::Relaxed);
    let (stats, handler) = join.join().expect("server thread");
    assert_eq!(stats.requests, 5, "demo sends five requests");
    assert_eq!(stats.shed_503, 0, "no shedding at demo load");
    Ok((stats, handler))
}
