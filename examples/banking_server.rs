//! A live TCP banking server on the Rhythm networked front end: the
//! non-blocking `rhythm-net` reader feeds per-type cohorts to either the
//! native (CPU) handlers or the full SIMT device pipeline.
//!
//! By default it runs a self-contained demo: it binds an ephemeral port,
//! spawns a client that logs in, fetches pages over one keep-alive
//! connection and logs out, then exits. Pass `--serve` to keep listening
//! so you can drive it with curl, `--simt` to serve cohorts on the
//! simulated data-parallel device instead of the scalar path, and
//! `--shards <n>` to run the multi-reactor front end (each shard owns its
//! connections, cohort pool, and device):
//!
//! ```sh
//! cargo run --release --example banking_server -- --serve --simt --shards 4
//! # in another shell (replace PORT):
//! curl -s -X POST 'http://127.0.0.1:PORT/bank/login.php' -d 'userid=7'
//! ```
//!
//! Either way the front end is the same: requests are parsed off
//! non-blocking sockets, batched into per-type cohorts (Free →
//! PartiallyFull → Full → Busy), launched on fill or on the formation
//! timeout, and the responses are transposed back onto their connections.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rhythm_banking::prelude::*;
use rhythm_net::{
    read_response, send_request, CohortHandler, NetConfig, NetServer, NetStats, ShardedServer,
};
use rhythm_simt::gpu::{Gpu, GpuConfig};

const NUM_USERS: u32 = 256;
const SESSION_CAPACITY: u32 = 65536;
const SESSION_SALT: u32 = 0x5EED_0001;

fn config() -> NetConfig {
    NetConfig {
        cohort_size: 32,
        fill_timeout: Duration::from_millis(2),
        ..NetConfig::default()
    }
}

fn scalar_handler() -> ScalarHandler {
    ScalarHandler::new(
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(SESSION_CAPACITY, SESSION_SALT),
    )
}

fn simt_handler() -> SimtHandler {
    let opts = CohortOptions {
        session_capacity: SESSION_CAPACITY,
        session_salt: SESSION_SALT,
        ..CohortOptions::default()
    };
    SimtHandler::new(
        Workload::build(),
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(SESSION_CAPACITY, SESSION_SALT),
        Gpu::new(GpuConfig::gtx_titan()),
        opts,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let serve_forever = args.iter().any(|a| a == "--serve");
    let simt = args.iter().any(|a| a == "--simt");
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    if serve_forever {
        // Serve until killed. The run loop polls; ctrl-C exits the
        // process, so the stop flag never fires here.
        let stop = AtomicBool::new(false);
        if shards > 1 {
            // Multi-reactor front end: each shard owns its connections,
            // cohort pool, and handler (its own device on the SIMT path).
            let path = if simt { "SIMT cohort" } else { "scalar" };
            if simt {
                let handlers: Vec<_> = (0..shards).map(|_| simt_handler()).collect();
                let server = ShardedServer::bind("127.0.0.1:0", config(), handlers)?;
                println!(
                    "rhythm banking server ({path} path, {shards} shards) on http://{}/bank/",
                    server.local_addr()?
                );
                server.run(&stop);
            } else {
                let handlers: Vec<_> = (0..shards).map(|_| scalar_handler()).collect();
                let server = ShardedServer::bind("127.0.0.1:0", config(), handlers)?;
                println!(
                    "rhythm banking server ({path} path, {shards} shards) on http://{}/bank/",
                    server.local_addr()?
                );
                server.run(&stop);
            }
        } else if simt {
            let server = NetServer::bind("127.0.0.1:0", config(), simt_handler())?;
            println!(
                "rhythm banking server (SIMT cohort path) on http://{}/bank/",
                server.local_addr()?
            );
            server.run(&stop);
        } else {
            let server = NetServer::bind("127.0.0.1:0", config(), scalar_handler())?;
            println!(
                "rhythm banking server (scalar path) on http://{}/bank/",
                server.local_addr()?
            );
            server.run(&stop);
        }
        return Ok(());
    }

    // Demo mode: run the server on a thread and drive it with one
    // keep-alive client connection.
    if simt {
        let (stats, handler) = demo(simt_handler())?;
        println!(
            "demo complete: {} requests in {} device cohorts (mean fill {:.2}), \
             {:.3} ms modelled device time, {} live sessions remain",
            stats.requests,
            handler.cohorts,
            stats.mean_fill(),
            handler.device_time_s * 1e3,
            handler.sessions().len()
        );
    } else {
        let (stats, handler) = demo(scalar_handler())?;
        println!(
            "demo complete: {} requests in {} cohorts (mean fill {:.2}), \
             {} live sessions remain (logout cleaned up)",
            stats.requests,
            stats.cohorts,
            stats.mean_fill(),
            handler.sessions().len()
        );
    }
    Ok(())
}

fn demo<H: CohortHandler + Send + 'static>(
    handler: H,
) -> Result<(NetStats, H), Box<dyn std::error::Error>> {
    let server = NetServer::bind("127.0.0.1:0", config(), handler)?;
    let addr = server.local_addr()?;
    println!("rhythm banking server listening on http://{addr}/bank/");

    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag));

    // One keep-alive connection for the whole conversation.
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut carry = Vec::new();

    send_request(
        &mut conn,
        b"POST /bank/login.php HTTP/1.1\r\nHost: demo\r\nContent-Length: 8\r\n\r\nuserid=7",
    )?;
    let login = read_response(&mut conn, &mut carry)?;
    assert_eq!(login.status, 200, "login must succeed");
    let token: u32 = login
        .header("Set-Cookie")
        .and_then(|v| v.strip_prefix("SID=").map(|t| t.trim().to_string()))
        .and_then(|t| t.parse().ok())
        .expect("login sets a session cookie");
    println!("[client] logged in, session token {token}");

    for page in ["account_summary.php", "profile.php", "transfer.php"] {
        send_request(
            &mut conn,
            format!(
                "GET /bank/{page}?userid=7 HTTP/1.1\r\nHost: demo\r\nCookie: SID={token}\r\n\r\n"
            )
            .as_bytes(),
        )?;
        let resp = read_response(&mut conn, &mut carry)?;
        println!(
            "[client] {page:<22} -> {} ({} bytes)",
            resp.status,
            resp.bytes.len()
        );
        assert_eq!(resp.status, 200, "expected 200 for {page}");
    }

    send_request(
        &mut conn,
        format!(
            "GET /bank/logout.php?userid=7 HTTP/1.1\r\nHost: demo\r\nCookie: SID={token}\r\n\r\n"
        )
        .as_bytes(),
    )?;
    let logout = read_response(&mut conn, &mut carry)?;
    println!("[client] logout                 -> {}", logout.status);
    assert_eq!(logout.status, 200);
    drop(conn);

    stop.store(true, Ordering::Relaxed);
    let (stats, handler) = join.join().expect("server thread");
    assert_eq!(stats.requests, 5, "demo sends five requests");
    assert_eq!(stats.shed_503, 0, "no shedding at demo load");
    Ok((stats, handler))
}
