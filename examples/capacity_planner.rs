//! Capacity planner: given a target request rate, compare server
//! platforms using the calibrated models — CPUs, replicated many-core
//! designs, and the Rhythm/Titan configurations — and check the network
//! and memory budgets.
//!
//! ```sh
//! cargo run --release --example capacity_planner -- 1000000
//! ```

use rhythm_platform::network::{compressed_bits_per_s, NetworkLink};
use rhythm_platform::presets::{CpuPreset, TitanPlatform, TitanPreset, PAPER_AVG_INSTRUCTIONS};
use rhythm_platform::scaling::{scale_to_match, CoreType};

fn main() {
    let target: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000.0);
    println!("capacity plan for {:.0}K requests/second\n", target / 1e3);

    // --- single-box CPU options -------------------------------------
    println!("single-socket CPUs (calibrated to the paper's measurements):");
    for p in CpuPreset::all() {
        let tput = p.throughput(PAPER_AVG_INSTRUCTIONS);
        let boxes = (target / tput).ceil();
        println!(
            "  {:<18} {:>7.0}K req/s per box -> {:>5.0} boxes, {:>7.0} W total wall power",
            p.name,
            tput / 1e3,
            boxes,
            boxes * p.wall_w
        );
    }

    // --- replicated-core designs -------------------------------------
    println!("\nidealized many-core scaling (paper §6.2 assumptions):");
    let arm = CoreType::arm_a9(CpuPreset::a9_1w().throughput(PAPER_AVG_INSTRUCTIONS));
    let i5 = CoreType::core_i5(CpuPreset::i5_1w().throughput(PAPER_AVG_INSTRUCTIONS));
    for core in [&arm, &i5] {
        let r = scale_to_match(core, target, f64::MAX);
        println!(
            "  {:<14} {:>6} cores, {:>6.0} W dynamic",
            core.name, r.cores_needed, r.scaled_power_w
        );
    }

    // --- Rhythm on a Titan --------------------------------------------
    println!("\nRhythm cohort server (paper-measured operating points):");
    for v in [TitanPlatform::A, TitanPlatform::B, TitanPlatform::C] {
        let t = TitanPreset::of(v);
        let boxes = (target / t.paper_tput).ceil();
        println!(
            "  {:<8} {:>7.0}K req/s per card -> {:>4.0} cards, {:>7.0} W total wall power",
            t.name,
            t.paper_tput / 1e3,
            boxes,
            boxes * t.wall_w
        );
    }

    // --- network feasibility -------------------------------------------
    println!("\nnetwork (16 KB average response, 80% HTML compression):");
    let need = compressed_bits_per_s(target, 512.0, 16.0 * 1024.0, 0.8);
    println!("  required bandwidth: {:.1} Gb/s", need / 1e9);
    for link in [
        NetworkLink::gbe10(),
        NetworkLink::gbe100(),
        NetworkLink::gbe400(),
    ] {
        let fits = if link.bits_per_s >= need {
            "ok"
        } else {
            "exceeded"
        };
        println!("  {:<8} {fits}", link.name);
    }

    // --- session memory -------------------------------------------------
    let sessions = target * 30.0; // ~30 s mean session lifetime
    let bytes = sessions * rhythm_banking::session_array::NODE_BYTES as f64 * 4.0;
    println!(
        "\nsession array for ~{:.0}M live sessions (4x headroom): {:.2} GB of device memory",
        sessions / 1e6,
        bytes / 1e9
    );
}
