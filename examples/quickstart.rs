//! Quickstart: batch a cohort of banking requests and execute it on the
//! simulated SIMT device.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rhythm_banking::prelude::*;
use rhythm_simt::gpu::{Gpu, GpuConfig};
use rhythm_simt::WARP_SIZE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile the workload: HTTP parser, per-type process stages, and
    //    the device backend — all as kernels for the SIMT engine.
    let workload = Workload::build();
    println!(
        "compiled {} kernels ({} KiB of HTML templates in constant memory)",
        2 + workload.stages.iter().map(Vec::len).sum::<usize>(),
        workload.pool.len() / 1024
    );

    // 2. A bank with 64 customers and a device session array.
    let store = BankStore::generate(64, 42);
    let mut sessions = SessionArrayHost::new(4096, 0x5EED_0001);

    // 3. Generate a cohort of 64 account-summary requests (raw HTTP).
    let mut generator = RequestGenerator::new(64, 7);
    let cohort = generator.uniform(RequestType::AccountSummary, 64, &mut sessions);
    println!(
        "first request on the wire:\n---\n{}---",
        String::from_utf8_lossy(&cohort[0].raw)
    );

    // 4. Launch: parse → process → backend → padded HTML responses.
    let gpu = Gpu::new(GpuConfig::gtx_titan());
    let result = run_cohort(
        &workload,
        &store,
        &mut sessions,
        &cohort,
        &gpu,
        &CohortOptions::default(),
    )?;

    // 5. Inspect.
    let first = String::from_utf8_lossy(&result.responses[0]);
    println!(
        "\nfirst response ({} bytes):\n---\n{}...\n---",
        result.responses[0].len(),
        &first[..first.len().min(400)]
    );
    println!("\nper-kernel breakdown:");
    for (name, launch) in &result.launches {
        println!(
            "  {:<28} {:>9.1} µs   simd-eff {:>5.2}   tx/access {:>5.2}",
            name,
            launch.time_s * 1e6,
            launch.stats.simd_efficiency(WARP_SIZE),
            launch.stats.transactions_per_access(),
        );
    }
    println!(
        "\ncohort of {} done in {:.1} µs of device time",
        cohort.len(),
        result.kernel_time_s() * 1e6
    );
    Ok(())
}
