//! Request-similarity study in miniature (the paper's Figure 2
//! methodology): trace a few requests of one type on the scalar
//! executor, merge the basic-block traces with a Myers diff, and see how
//! close lockstep execution gets to ideal speedup.
//!
//! ```sh
//! cargo run --release --example trace_similarity
//! ```

use rhythm_banking::prelude::*;
use rhythm_trace::merge_traces;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::build();
    let store = BankStore::generate(64, 11);

    for ty in [
        RequestType::Login,
        RequestType::AccountSummary,
        RequestType::BillPayStatusOutput,
    ] {
        let mut sessions = SessionArrayHost::new(512, 0xBEEF);
        let mut generator = RequestGenerator::new(64, ty.id() as u64);

        let mut traces = Vec::new();
        for _ in 0..4 {
            let req = generator.one(ty, &mut sessions);
            let run = run_request_scalar(&workload, &store, &mut sessions, &req, true)?;
            traces.push(run.trace.expect("trace requested"));
        }

        let (merged, report) = merge_traces(&traces, 100_000);
        println!("{ty}:");
        println!(
            "  {} traces of {:?} blocks",
            report.traces,
            traces.iter().map(Vec::len).collect::<Vec<_>>()
        );
        println!(
            "  merged {} blocks -> speedup {:.2} of ideal {:.0} ({:.1}% of ideal)",
            merged.len(),
            report.speedup(),
            report.ideal(),
            report.relative_to_ideal() * 100.0
        );
        println!(
            "  interpretation: {:.1}% of the merged execution is shared lockstep work\n",
            report.relative_to_ideal() * 100.0
        );
    }
    println!("the paper observes nearly linear speedup for every type — same-type");
    println!("requests share almost all control flow, which is what makes cohort");
    println!("scheduling on SIMT hardware viable.");
    Ok(())
}
