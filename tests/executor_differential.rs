//! Three-way executor differential: the scalar reference, the legacy
//! masked SIMT engine, and the pre-decoded warp-vectorized engine must be
//! bit-identical — memory images and (for the two SIMT engines) every
//! `KernelStats` counter — at workers {1, 2, 4} and sub-warp packing
//! widths {1, 2, 4}, on random lint-clean kernels and on the real banking
//! kernels, including wide-copy-eligible kernels and Budget-fault cases.
//!
//! This is the safety net under the interpreter fast paths: any divergence
//! between the convergent vector loops and the masked per-lane semantics,
//! any decode bug in `ExecPlan`, or any fused-gang or wide-copy shortcut
//! that isn't semantics-preserving, shows up here as a byte or counter
//! mismatch.

use proptest::prelude::*;

use rhythm_banking::backend::BankStore;
use rhythm_banking::genreq::RequestGenerator;
use rhythm_banking::kernels::Workload;
use rhythm_banking::layout::{CohortLayout, REQBUF_BYTES};
use rhythm_banking::session_array::SessionArrayHost;
use rhythm_banking::types::RequestType;
use rhythm_simt::exec::scalar::{execute_scalar, ScalarRun};
use rhythm_simt::exec::simt::{execute_simt_legacy_workers, execute_simt_workers};
use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_verify::corpus::build_kernel;

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const PACK_WIDTHS: [u32; 3] = [1, 2, 4];

proptest! {
    /// Random structured kernels: scalar lane-at-a-time execution is the
    /// semantic reference; both SIMT engines must reproduce its memory
    /// image exactly, and must agree with each other on every stats
    /// counter, at every worker count.
    #[test]
    fn random_kernels_three_way_identical(
        seed in any::<u32>(),
        steps in prop::collection::vec(any::<u8>(), 1..10),
        lane_sel in 0usize..3,
    ) {
        // 96 = three full warps; 77 adds a partial warp for mask paths.
        let lanes = [32u32, 77, 96][lane_sel];
        let program = build_kernel(seed, &steps);
        let mem_bytes = lanes as usize * 4;
        let pool = ConstPool::new();

        // Scalar reference.
        let mut reference = DeviceMemory::new(mem_bytes);
        let scalar_cfg = LaunchConfig::new(1, []);
        for id in 0..lanes {
            execute_scalar(&ScalarRun::new(&program, id), &scalar_cfg, &mut reference, &pool, None)
                .unwrap();
        }

        let cfg = LaunchConfig::new(lanes, []);
        let mut legacy_stats = None;
        for workers in WORKER_COUNTS {
            let mut mem_l = DeviceMemory::new(mem_bytes);
            let sl = execute_simt_legacy_workers(&program, &cfg, &mut mem_l, &pool, workers).unwrap();
            let mut mem_p = DeviceMemory::new(mem_bytes);
            let sp = execute_simt_workers(&program, &cfg, &mut mem_p, &pool, workers).unwrap();

            prop_assert_eq!(
                mem_l.as_bytes(), reference.as_bytes(),
                "legacy SIMT diverged from scalar at {} workers", workers
            );
            prop_assert_eq!(
                mem_p.as_bytes(), reference.as_bytes(),
                "pre-decoded SIMT diverged from scalar at {} workers", workers
            );
            prop_assert_eq!(
                &sp, &sl,
                "engine stats diverged at {} workers", workers
            );
            // Sub-warp packing is a scheduling decision, never a semantic
            // one: every pack width must reproduce the same bytes and the
            // same counters. (The executor further clamps via the plan's
            // static profile, e.g. atomics force width 1.)
            for pack in [2u32, 4] {
                let mut packed_cfg = cfg.clone();
                packed_cfg.pack = pack;
                let mut mem_k = DeviceMemory::new(mem_bytes);
                let sk =
                    execute_simt_workers(&program, &packed_cfg, &mut mem_k, &pool, workers).unwrap();
                prop_assert_eq!(
                    mem_k.as_bytes(), reference.as_bytes(),
                    "pack {} diverged from scalar at {} workers", pack, workers
                );
                prop_assert_eq!(
                    &sk, &sl,
                    "pack {} stats diverged at {} workers", pack, workers
                );
            }
            if let Some(first) = &legacy_stats {
                prop_assert_eq!(first, &sl, "stats not worker-count invariant");
            } else {
                legacy_stats = Some(sl);
            }
        }
    }
}

/// Wide-copy-eligible kernels under an instruction budget that trips
/// mid-copy: the fast path must take the byte-identical fallback, so the
/// Budget fault itself, the partial memory image, and (on success paths)
/// every counter agree with the legacy engine at every pack width.
#[test]
fn wide_copy_budget_fault_differential() {
    use rhythm_simt::ir::ProgramBuilder;

    for (lane_stride, elem_stride) in [(1u32, 64u32), (64, 1)] {
        let mut pool = ConstPool::new();
        let (off, len) = pool.intern_str("HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n");
        let mut b = ProgramBuilder::new("wide_copy_budget");
        let base = b.imm(0);
        let lane = b.lane_id();
        let ls = b.imm(lane_stride);
        let es = b.imm(elem_stride);
        let cur = b.cursor(base, lane, ls, es);
        b.write_const_str(&cur, off, len);
        b.halt();
        let program = b.build().unwrap();

        let lanes = 90u32;
        let size = 64 * lanes as usize;
        // Budgets straddling the copy loop: far below, mid-loop, and ample.
        for max_instructions in [40u64, 150, 100_000] {
            let mut cfg = LaunchConfig::new(lanes, []);
            cfg.max_instructions = max_instructions;
            let mut mem_legacy = DeviceMemory::new(size);
            let legacy = execute_simt_legacy_workers(&program, &cfg, &mut mem_legacy, &pool, 1);
            for workers in WORKER_COUNTS {
                for pack in PACK_WIDTHS {
                    let mut pcfg = cfg.clone();
                    pcfg.pack = pack;
                    let mut mem_plan = DeviceMemory::new(size);
                    let plan = execute_simt_workers(&program, &pcfg, &mut mem_plan, &pool, workers);
                    match (&legacy, &plan) {
                        (Ok(sl), Ok(sp)) => assert_eq!(
                            sp, sl,
                            "stats diverged (stride {lane_stride}/{elem_stride}, \
                             budget {max_instructions}, workers {workers}, pack {pack})"
                        ),
                        (Err(el), Err(ep)) => assert_eq!(
                            format!("{el}"),
                            format!("{ep}"),
                            "fault diverged (stride {lane_stride}/{elem_stride}, \
                             budget {max_instructions}, workers {workers}, pack {pack})"
                        ),
                        _ => panic!(
                            "fault disagreement (stride {lane_stride}/{elem_stride}, \
                             budget {max_instructions}, workers {workers}, pack {pack}): \
                             legacy {legacy:?} vs plan {plan:?}"
                        ),
                    }
                    // The memory image is fully specified on success. On a
                    // fault, warps *after* the faulting one may or may not
                    // have run depending on the schedule (parallel workers
                    // and gangs both run past a sibling's fault before the
                    // abort lands), so byte identity with the serial legacy
                    // engine is only contractual for the serial unpacked
                    // schedule.
                    if plan.is_ok() || (workers == 1 && pack == 1) {
                        assert_eq!(
                            mem_plan.as_bytes(),
                            mem_legacy.as_bytes(),
                            "memory diverged (stride {lane_stride}/{elem_stride}, \
                             budget {max_instructions}, workers {workers}, pack {pack})"
                        );
                    }
                }
            }
        }
    }
}

/// The production banking kernels, end to end: drive a full device-backend
/// cohort (parser → stages with backend rounds) through the legacy and
/// pre-decoded engines in lockstep, comparing the entire memory image and
/// the kernel stats after every single launch, for every request type and
/// worker count. (The scalar leg of the three-way proof for banking
/// kernels is the existing cohort-vs-native differential suite; warp
/// reductions make a lane-looped scalar run of a 48-lane cohort
/// semantically different by design.)
#[test]
fn banking_kernels_legacy_vs_predecoded_lockstep() {
    use rhythm_simt::ir::Op;

    const COHORT: u32 = 48; // one full warp + one partial warp
    const CAPACITY: u32 = 1024;
    const SALT: u32 = 0x5EED_0001;

    let workload = Workload::build();
    let store = BankStore::generate(256, 1);
    let store_img = store.serialize_device();

    for workers in WORKER_COUNTS {
        let mut sessions = SessionArrayHost::new(CAPACITY, SALT);
        let mut generator = RequestGenerator::new(128, 0xD1FF + workers as u64);
        for ty in RequestType::ALL {
            let reqs = generator.uniform(ty, COHORT as usize, &mut sessions);
            let layout = CohortLayout::new(
                COHORT,
                ty.response_buffer_bytes(),
                CAPACITY,
                SALT,
                store_img.len() as u32,
                true,
            );
            let mut mem = DeviceMemory::new(layout.total_bytes as usize);
            mem.load(layout.store_base, &store_img).unwrap();
            mem.load(layout.session_base, &sessions.to_device_bytes())
                .unwrap();
            for (lane, r) in reqs.iter().enumerate() {
                layout
                    .write_lane(
                        &mut mem,
                        layout.reqbuf_base,
                        REQBUF_BYTES,
                        lane as u32,
                        &r.raw,
                    )
                    .unwrap();
            }
            let cfg = LaunchConfig {
                lanes: COHORT,
                params: layout.params(),
                local_bytes: 64,
                shared_bytes: 1024,
                ..Default::default()
            };

            // Same launch sequence as the cohort runner in device-backend
            // mode: parser, then each stage with a backend round between.
            let stages = workload.stages_of(ty);
            let mut sequence = vec![("parser", &workload.parser)];
            let n_backend = stages.len() - 1;
            for (i, stage) in stages.iter().enumerate() {
                sequence.push((stage.name(), stage));
                if i < n_backend {
                    sequence.push(("backend", &workload.backend));
                }
            }

            let mut mem_legacy = mem.clone();
            let mut mem_packed = mem.clone();
            let mut mem_plan = mem;
            let mut packed_cfg = cfg.clone();
            packed_cfg.pack = 4;
            for (name, kernel) in sequence {
                // Cross-warp `AtomicAdd` old values are schedule-dependent
                // at workers > 1 (see `execute_simt_workers`): the session
                // allocator in `login_response` hands out slots in whatever
                // order the host threads reach the counter, so two
                // independently scheduled runs can legitimately differ.
                // Only the serial schedule is contractual for atomic
                // kernels; every other kernel is compared at full fan-out.
                let kw = if kernel
                    .blocks()
                    .iter()
                    .any(|b| b.ops.iter().any(|o| matches!(o, Op::AtomicAdd { .. })))
                {
                    1
                } else {
                    workers
                };
                let sl =
                    execute_simt_legacy_workers(kernel, &cfg, &mut mem_legacy, &workload.pool, kw)
                        .unwrap_or_else(|e| panic!("{ty:?}/{name} legacy fault: {e}"));
                let sp = execute_simt_workers(kernel, &cfg, &mut mem_plan, &workload.pool, kw)
                    .unwrap_or_else(|e| panic!("{ty:?}/{name} pre-decoded fault: {e}"));
                let sk =
                    execute_simt_workers(kernel, &packed_cfg, &mut mem_packed, &workload.pool, kw)
                        .unwrap_or_else(|e| panic!("{ty:?}/{name} packed fault: {e}"));
                assert_eq!(
                    sp, sl,
                    "stats diverged on {ty:?}/{name} at {workers} workers"
                );
                assert_eq!(
                    sk, sl,
                    "packed stats diverged on {ty:?}/{name} at {workers} workers"
                );
                assert_eq!(
                    mem_plan.as_bytes(),
                    mem_legacy.as_bytes(),
                    "memory diverged on {ty:?}/{name} at {workers} workers"
                );
                assert_eq!(
                    mem_packed.as_bytes(),
                    mem_legacy.as_bytes(),
                    "packed memory diverged on {ty:?}/{name} at {workers} workers"
                );
            }

            // Keep the host session mirror in sync so later request types
            // generate against valid tokens.
            let sess_bytes = mem_plan
                .slice(
                    layout.session_base,
                    SessionArrayHost::device_bytes(CAPACITY),
                )
                .unwrap();
            sessions = SessionArrayHost::from_device_bytes(sess_bytes, SALT);
        }
    }
}
