//! End-to-end equivalence of the networked front end: the same Banking
//! requests served over real sockets (scalar and SIMT cohort paths) must
//! produce responses byte-identical — modulo warp-alignment padding on
//! the device path — to the offline reference executions
//! (`handle_native` / `run_cohort`).

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rhythm_banking::prelude::*;
use rhythm_net::{read_response, send_request, CohortHandler, NetConfig, NetServer, ShardedServer};
use rhythm_simt::gpu::{Gpu, GpuConfig};

const NUM_USERS: u32 = 64;
const CAPACITY: u32 = 4096;
const SALT: u32 = 0x5EED_0001;

/// The conversation driven over the wire and replayed offline: a login
/// followed by session-bearing page fetches of several types.
const PAGES: [RequestType; 4] = [
    RequestType::AccountSummary,
    RequestType::Profile,
    RequestType::Transfer,
    RequestType::OrderCheck,
];
const USERID: u32 = 7;

/// Serve the conversation through a socket front end and return the raw
/// responses in order (login first, then each page).
fn serve_conversation<H: CohortHandler + Send + 'static>(handler: H) -> Vec<Vec<u8>> {
    let config = NetConfig {
        cohort_size: 4,
        fill_timeout: Duration::from_millis(1),
        ..NetConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", config, handler).expect("bind");
    let addr = server.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag));

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut carry = Vec::new();
    let mut out = Vec::new();

    send_request(
        &mut conn,
        format!(
            "POST /bank/login.php HTTP/1.1\r\nHost: t\r\nContent-Length: 8\r\n\r\nuserid={USERID}"
        )
        .as_bytes(),
    )
    .unwrap();
    let login = read_response(&mut conn, &mut carry).expect("login response");
    assert_eq!(login.status, 200);
    let token: u32 = login
        .header("Set-Cookie")
        .and_then(|v| v.strip_prefix("SID=").map(|t| t.trim().to_string()))
        .and_then(|t| t.parse().ok())
        .expect("login sets SID");
    out.push(login.bytes);

    for ty in PAGES {
        send_request(
            &mut conn,
            format!(
                "GET /bank/{}?userid={USERID} HTTP/1.1\r\nHost: t\r\nCookie: SID={token}\r\n\r\n",
                ty.file_name()
            )
            .as_bytes(),
        )
        .unwrap();
        let resp = read_response(&mut conn, &mut carry).expect("page response");
        assert_eq!(resp.status, 200, "{ty} must succeed over the wire");
        out.push(resp.bytes);
    }
    drop(conn);

    stop.store(true, Ordering::Relaxed);
    let (stats, _) = join.join().expect("server thread");
    assert_eq!(stats.requests as usize, 1 + PAGES.len());
    assert_eq!(stats.shed_503, 0, "no shedding at this load");
    out
}

/// Serve the conversation through the sharded multi-reactor front end.
/// The conversation rides one connection, so session-affinity routing
/// pins it (and its session) to one shard regardless of shard count.
fn serve_conversation_sharded<H, F>(mk: F, shards: usize) -> Vec<Vec<u8>>
where
    H: CohortHandler + Send + 'static,
    F: Fn() -> H,
{
    let config = NetConfig {
        cohort_size: 4,
        fill_timeout: Duration::from_millis(1),
        ..NetConfig::default()
    };
    serve_conversation_sharded_cfg(config, mk, shards)
}

/// [`serve_conversation_sharded`] with an explicit [`NetConfig`] — used
/// to flip the adaptive cohort controller on while keeping everything
/// else about the conversation identical.
fn serve_conversation_sharded_cfg<H, F>(config: NetConfig, mk: F, shards: usize) -> Vec<Vec<u8>>
where
    H: CohortHandler + Send + 'static,
    F: Fn() -> H,
{
    let handlers: Vec<H> = (0..shards).map(|_| mk()).collect();
    let server = ShardedServer::bind("127.0.0.1:0", config, handlers).expect("bind");
    let addr = server.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag));

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut carry = Vec::new();
    let mut out = Vec::new();

    send_request(
        &mut conn,
        format!(
            "POST /bank/login.php HTTP/1.1\r\nHost: t\r\nContent-Length: 8\r\n\r\nuserid={USERID}"
        )
        .as_bytes(),
    )
    .unwrap();
    let login = read_response(&mut conn, &mut carry).expect("login response");
    assert_eq!(login.status, 200);
    let token: u32 = login
        .header("Set-Cookie")
        .and_then(|v| v.strip_prefix("SID=").map(|t| t.trim().to_string()))
        .and_then(|t| t.parse().ok())
        .expect("login sets SID");
    out.push(login.bytes);

    for ty in PAGES {
        send_request(
            &mut conn,
            format!(
                "GET /bank/{}?userid={USERID} HTTP/1.1\r\nHost: t\r\nCookie: SID={token}\r\n\r\n",
                ty.file_name()
            )
            .as_bytes(),
        )
        .unwrap();
        let resp = read_response(&mut conn, &mut carry).expect("page response");
        assert_eq!(resp.status, 200, "{ty} must succeed at {shards} shards");
        out.push(resp.bytes);
    }
    drop(conn);

    stop.store(true, Ordering::Relaxed);
    let run = join.join().expect("server threads");
    let total = run.total();
    assert_eq!(total.requests as usize, 1 + PAGES.len());
    assert_eq!(total.shed_503, 0, "no shedding at this load");
    assert_eq!(total.responses_dropped, 0, "no dropped responses");
    // One connection -> exactly one shard saw traffic (affinity pinning).
    assert_eq!(
        run.shards
            .iter()
            .filter(|(stats, _)| stats.requests > 0)
            .count(),
        1,
        "a single connection must stay pinned to one shard"
    );
    out
}

/// Replay the same conversation offline through `handle_native`.
fn native_conversation() -> Vec<Vec<u8>> {
    let store = BankStore::generate(NUM_USERS, 1);
    let mut sessions = SessionArrayHost::new(CAPACITY, SALT);
    let mut out = Vec::new();

    let login = BankingRequest::new(RequestType::Login, 0, [USERID, 0, 0, 0]);
    let resp = handle_native(&login, &store, &mut sessions);
    let text = String::from_utf8_lossy(&resp);
    let token: u32 = text
        .split("Set-Cookie: SID=")
        .nth(1)
        .and_then(|t| t.split_whitespace().next())
        .and_then(|t| t.parse().ok())
        .expect("native login sets SID");
    out.push(resp);

    for ty in PAGES {
        let req = BankingRequest::new(ty, token, [USERID, 0, 0, 0]);
        out.push(handle_native(&req, &store, &mut sessions));
    }
    out
}

/// Replay the same conversation offline through the device cohort runner
/// (cohorts of one, matching the wire conversation's serial order).
fn device_conversation() -> Vec<Vec<u8>> {
    let workload = Workload::build();
    let store = BankStore::generate(NUM_USERS, 1);
    let opts = CohortOptions {
        session_capacity: CAPACITY,
        session_salt: SALT,
        ..CohortOptions::default()
    };
    let gpu = Gpu::new(GpuConfig::gtx_titan());
    let mut sessions = SessionArrayHost::new(CAPACITY, SALT);
    let mut out = Vec::new();

    let login = GeneratedRequest {
        ty: RequestType::Login,
        token: 0,
        params: [USERID, 0, 0, 0],
        raw: rhythm_banking::genreq::raw_http(RequestType::Login, 0, &[USERID, 0, 0, 0]),
    };
    let result =
        run_cohort(&workload, &store, &mut sessions, &[login], &gpu, &opts).expect("device login");
    let text = String::from_utf8_lossy(&result.responses[0]);
    let token: u32 = text
        .split("Set-Cookie: SID=")
        .nth(1)
        .and_then(|t| t.split_whitespace().next())
        .and_then(|t| t.parse().ok())
        .expect("device login sets SID");
    out.push(result.responses[0].clone());

    for ty in PAGES {
        let req = GeneratedRequest {
            ty,
            token,
            params: [USERID, 0, 0, 0],
            raw: rhythm_banking::genreq::raw_http(ty, token, &[USERID, 0, 0, 0]),
        };
        let result =
            run_cohort(&workload, &store, &mut sessions, &[req], &gpu, &opts).expect("device page");
        out.push(result.responses[0].clone());
    }
    out
}

#[test]
fn scalar_net_path_matches_offline_native_exactly() {
    let store = BankStore::generate(NUM_USERS, 1);
    let sessions = SessionArrayHost::new(CAPACITY, SALT);
    let wire = serve_conversation(ScalarHandler::new(store, sessions));
    let offline = native_conversation();
    assert_eq!(wire.len(), offline.len());
    for (i, (w, o)) in wire.iter().zip(&offline).enumerate() {
        assert_eq!(w, o, "response {i} differs between socket and offline");
    }
}

#[test]
fn simt_net_path_matches_offline_cohort_runner_exactly() {
    let opts = CohortOptions {
        session_capacity: CAPACITY,
        session_salt: SALT,
        ..CohortOptions::default()
    };
    let handler = SimtHandler::new(
        Workload::build(),
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(CAPACITY, SALT),
        Gpu::new(GpuConfig::gtx_titan()),
        opts,
    );
    let wire = serve_conversation(handler);
    let offline = device_conversation();
    assert_eq!(wire.len(), offline.len());
    for (i, (w, o)) in wire.iter().zip(&offline).enumerate() {
        assert_eq!(w, o, "response {i} differs between socket and offline");
    }
}

/// Socket-vs-offline byte identity must hold at every shard count: the
/// sharded front end may never perturb responses.
#[test]
fn sharded_scalar_path_matches_offline_at_every_shard_count() {
    let offline = native_conversation();
    for shards in [1usize, 2, 4] {
        let wire = serve_conversation_sharded(
            || {
                ScalarHandler::new(
                    BankStore::generate(NUM_USERS, 1),
                    SessionArrayHost::new(CAPACITY, SALT),
                )
            },
            shards,
        );
        assert_eq!(wire.len(), offline.len());
        for (i, (w, o)) in wire.iter().zip(&offline).enumerate() {
            assert_eq!(w, o, "response {i} differs at {shards} shards");
        }
    }
}

/// The SIMT device path through the sharded front end must also stay
/// byte-identical to the offline cohort runner at every shard count.
#[test]
fn sharded_simt_path_matches_offline_at_every_shard_count() {
    let offline = device_conversation();
    for shards in [1usize, 2, 4] {
        let wire = serve_conversation_sharded(
            || {
                let opts = CohortOptions {
                    session_capacity: CAPACITY,
                    session_salt: SALT,
                    ..CohortOptions::default()
                };
                SimtHandler::new(
                    Workload::build(),
                    BankStore::generate(NUM_USERS, 1),
                    SessionArrayHost::new(CAPACITY, SALT),
                    Gpu::new(GpuConfig::gtx_titan()),
                    opts,
                )
            },
            shards,
        );
        assert_eq!(wire.len(), offline.len());
        for (i, (w, o)) in wire.iter().zip(&offline).enumerate() {
            assert_eq!(w, o, "response {i} differs at {shards} shards");
        }
    }
}

#[test]
fn scalar_and_simt_net_paths_agree_modulo_padding() {
    let scalar = serve_conversation(ScalarHandler::new(
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(CAPACITY, SALT),
    ));
    let opts = CohortOptions {
        session_capacity: CAPACITY,
        session_salt: SALT,
        ..CohortOptions::default()
    };
    let simt = serve_conversation(SimtHandler::new(
        Workload::build(),
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(CAPACITY, SALT),
        Gpu::new(GpuConfig::gtx_titan()),
        opts,
    ));
    for (i, (a, b)) in scalar.iter().zip(&simt).enumerate() {
        assert!(
            rhythm_http::padding::eq_modulo_padding(a, b),
            "response {i}: scalar and SIMT paths disagree beyond padding"
        );
    }
}

/// The adaptive cohort controller (with similarity sub-keys on) may only
/// change *when* and *how deep* cohorts launch, never *what* they
/// return: the conversation must stay byte-identical to both the
/// fixed-timeout wire path and the offline native reference at every
/// shard count.
#[test]
fn adaptive_scalar_path_is_byte_identical_at_every_shard_count() {
    let offline = native_conversation();
    let mk = || {
        ScalarHandler::new(
            BankStore::generate(NUM_USERS, 1),
            SessionArrayHost::new(CAPACITY, SALT),
        )
        .with_subkeys()
    };
    let fixed = serve_conversation_sharded(mk, 1);
    for shards in [1usize, 2, 4] {
        let config = NetConfig {
            cohort_size: 4,
            fill_timeout: Duration::from_millis(1),
            adaptive: true,
            slo_p99: Duration::from_millis(10),
            ..NetConfig::default()
        };
        let wire = serve_conversation_sharded_cfg(config, mk, shards);
        assert_eq!(wire.len(), offline.len());
        for (i, ((w, f), o)) in wire.iter().zip(&fixed).zip(&offline).enumerate() {
            assert_eq!(
                w, f,
                "response {i}: adaptive differs from fixed at {shards} shards"
            );
            assert_eq!(
                w, o,
                "response {i}: adaptive differs from offline at {shards} shards"
            );
        }
    }
}

/// Same determinism contract on the SIMT device path: adaptive batching
/// plus sub-keyed cohort formation must stay byte-identical to the
/// fixed-timeout wire path and the offline cohort runner.
#[test]
fn adaptive_simt_path_is_byte_identical_at_every_shard_count() {
    let offline = device_conversation();
    let mk = || {
        let opts = CohortOptions {
            session_capacity: CAPACITY,
            session_salt: SALT,
            ..CohortOptions::default()
        };
        SimtHandler::new(
            Workload::build(),
            BankStore::generate(NUM_USERS, 1),
            SessionArrayHost::new(CAPACITY, SALT),
            Gpu::new(GpuConfig::gtx_titan()),
            opts,
        )
        .with_subkeys()
    };
    let fixed = serve_conversation_sharded(mk, 1);
    for shards in [1usize, 2, 4] {
        let config = NetConfig {
            cohort_size: 4,
            fill_timeout: Duration::from_millis(1),
            adaptive: true,
            slo_p99: Duration::from_millis(10),
            ..NetConfig::default()
        };
        let wire = serve_conversation_sharded_cfg(config, mk, shards);
        assert_eq!(wire.len(), offline.len());
        for (i, ((w, f), o)) in wire.iter().zip(&fixed).zip(&offline).enumerate() {
            assert_eq!(
                w, f,
                "response {i}: adaptive differs from fixed at {shards} shards"
            );
            assert_eq!(
                w, o,
                "response {i}: adaptive differs from offline at {shards} shards"
            );
        }
    }
}
