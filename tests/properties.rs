//! Property-based tests over the core invariants of the substrates.

use proptest::prelude::*;

use rhythm_banking::session_array::SessionArrayHost;
use rhythm_http::padding::{cohort_padding, eq_modulo_padding, next_pow2};
use rhythm_http::query::{url_decode, url_encode};
use rhythm_http::{HttpRequest, ResponseBuilder};
use rhythm_net::{decide, ControllerConfig};
use rhythm_simt::exec::simt::execute_simt;
use rhythm_simt::exec::{scalar::execute_scalar, scalar::ScalarRun, LaunchConfig};
use rhythm_simt::ir::{BinOp, ProgramBuilder};
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_simt::transpose::{transpose_col_to_row, transpose_row_to_col};
use rhythm_trace::myers::{is_supersequence, merge_pair};

proptest! {
    /// SCS merge: the merged sequence is a supersequence of both inputs,
    /// bounded by max(|a|,|b|) ≤ |merged| ≤ |a|+|b|, and the SCS length
    /// identity holds for exact merges.
    #[test]
    fn myers_merge_invariants(
        a in prop::collection::vec(0u32..8, 0..80),
        b in prop::collection::vec(0u32..8, 0..80),
    ) {
        let m = merge_pair(&a, &b, 400);
        prop_assert!(is_supersequence(&m.merged, &a));
        prop_assert!(is_supersequence(&m.merged, &b));
        prop_assert!(m.merged.len() >= a.len().max(b.len()));
        prop_assert!(m.merged.len() <= a.len() + b.len());
        if m.exact {
            prop_assert_eq!(m.merged.len(), a.len() + b.len() - m.lcs);
            prop_assert_eq!(m.lcs * 2 + m.distance, a.len() + b.len());
        }
    }

    /// Merging a sequence with itself is the identity.
    #[test]
    fn myers_self_merge_identity(a in prop::collection::vec(0u32..16, 0..200)) {
        let m = merge_pair(&a, &a, 4);
        prop_assert!(m.exact);
        prop_assert_eq!(m.merged, a.clone());
        prop_assert_eq!(m.distance, 0);
    }

    /// Transpose is an involution for any matrix shape.
    #[test]
    fn transpose_involution(rows in 1usize..24, cols in 1usize..24, seed in 0u64..1000) {
        let n = rows * cols;
        let src: Vec<u8> = (0..n).map(|i| ((i as u64 * 31 + seed) % 251) as u8).collect();
        let mut t = vec![0u8; n];
        let mut back = vec![0u8; n];
        transpose_row_to_col(&src, &mut t, rows, cols);
        transpose_col_to_row(&t, &mut back, rows, cols);
        prop_assert_eq!(src, back);
    }

    /// URL encoding round-trips through decoding for arbitrary strings.
    #[test]
    fn url_roundtrip(s in "[ -~]{0,64}") {
        let enc = url_encode(&s);
        prop_assert_eq!(url_decode(enc.as_bytes()).unwrap(), s);
    }

    /// The response builder's backpatched Content-Length always equals the
    /// actual body size.
    #[test]
    fn content_length_always_consistent(body in prop::collection::vec(any::<u8>(), 0..4096)) {
        let mut r = ResponseBuilder::new(200, "OK");
        r.reserve_content_length();
        r.finish_headers();
        r.write(&body);
        let out = r.finish();
        let parsed = rhythm_http::response::parsed_content_length(&out);
        prop_assert_eq!(parsed, Some(body.len()));
    }

    /// Parsing a generated GET request recovers the query parameters.
    #[test]
    fn http_parse_recovers_params(userid in 0u32..1_000_000, amount in 1u32..1_000_000) {
        let raw = format!(
            "GET /bank/transfer.php?userid={userid}&a={amount} HTTP/1.1\r\nHost: x\r\n\r\n"
        );
        let req = HttpRequest::parse(raw.as_bytes()).unwrap();
        prop_assert_eq!(req.params.get_u32("userid"), Some(userid));
        prop_assert_eq!(req.params.get_u32("a"), Some(amount));
    }

    /// Cohort padding: every padded width equals the maximum.
    #[test]
    fn padding_reaches_max(widths in prop::collection::vec(0usize..64, 1..40)) {
        let (max, pads) = cohort_padding(&widths);
        for (w, p) in widths.iter().zip(&pads) {
            prop_assert_eq!(w + p, max);
        }
    }

    /// Padding never changes content under the padding-equivalence.
    #[test]
    fn padding_preserves_content(lines in prop::collection::vec("[a-z]{0,12}", 1..10)) {
        let plain: Vec<u8> = lines.join("\n").into_bytes();
        let padded: Vec<u8> = lines
            .iter()
            .map(|l| format!("{l}{}", " ".repeat(17 - l.len().min(16))))
            .collect::<Vec<_>>()
            .join("\n")
            .into_bytes();
        prop_assert!(eq_modulo_padding(&plain, &padded));
    }

    /// next_pow2 is the least power of two ≥ n.
    #[test]
    fn next_pow2_minimal(n in 1usize..1_000_000) {
        let p = next_pow2(n);
        prop_assert!(p.is_power_of_two());
        prop_assert!(p >= n);
        prop_assert!(p / 2 < n);
    }

    /// Session array: tokens from inserts always look up to their user,
    /// and removal is precise.
    #[test]
    fn session_array_model(
        users in prop::collection::vec(0u32..100, 1..32),
        remove_mask in prop::collection::vec(any::<bool>(), 32),
    ) {
        let mut s = SessionArrayHost::new(64, 0x1234_5678);
        let toks: Vec<u32> = users.iter().map(|&u| s.insert(u).unwrap()).collect();
        for (t, u) in toks.iter().zip(&users) {
            prop_assert_eq!(s.lookup(*t), Some(*u));
        }
        let mut live = toks.len() as u32;
        for (i, t) in toks.iter().enumerate() {
            if remove_mask[i % remove_mask.len()] {
                prop_assert!(s.remove(*t));
                live -= 1;
            }
        }
        prop_assert_eq!(s.len(), live);
        // Device roundtrip preserves everything.
        let back = SessionArrayHost::from_device_bytes(&s.to_device_bytes(), 0x1234_5678);
        prop_assert_eq!(back.len(), live);
    }

    /// Scalar and SIMT executors agree on arbitrary arithmetic programs
    /// over arbitrary lane counts (a randomized differential test of the
    /// divergence stack).
    #[test]
    fn scalar_simt_agree_on_random_programs(
        lanes in 1u32..70,
        ops in prop::collection::vec((0u32..6, 1u32..50), 1..8),
    ) {
        // Build: each (op, k) folds the accumulator with a data-dependent
        // branch so different lanes diverge.
        let mut b = ProgramBuilder::new("rand");
        let gid = b.global_id();
        let acc = b.reg();
        b.mov(acc, gid);
        for &(sel, k) in &ops {
            let kr = b.imm(k);
            match sel {
                0 => { b.bin_into(acc, BinOp::Add, acc, kr); }
                1 => { b.bin_into(acc, BinOp::Mul, acc, kr); }
                2 => { b.bin_into(acc, BinOp::Xor, acc, kr); }
                3 => {
                    // divergent if: acc odd → add k else sub k
                    let one = b.imm(1);
                    let odd = b.bin(BinOp::And, acc, one);
                    b.if_then_else(
                        odd,
                        |b| b.bin_into(acc, BinOp::Add, acc, kr),
                        |b| b.bin_into(acc, BinOp::Sub, acc, kr),
                    );
                }
                4 => {
                    // data-dependent loop: acc % 4 iterations
                    let four = b.imm(4);
                    let n = b.bin(BinOp::RemU, acc, four);
                    let one = b.imm(1);
                    b.for_loop(n, |b, _| {
                        b.bin_into(acc, BinOp::Add, acc, one);
                    });
                }
                _ => { b.bin_into(acc, BinOp::Shr, acc, kr); }
            }
        }
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, gid, four);
        b.st_global_word(addr, 0, acc);
        b.halt();
        let p = b.build().unwrap();

        let pool = ConstPool::new();
        let mut mem_simt = DeviceMemory::new(lanes as usize * 4);
        execute_simt(&p, &LaunchConfig::new(lanes, []), &mut mem_simt, &pool).unwrap();

        let mut mem_scalar = DeviceMemory::new(lanes as usize * 4);
        let cfg = LaunchConfig::new(1, []);
        for id in 0..lanes {
            execute_scalar(&ScalarRun::new(&p, id), &cfg, &mut mem_scalar, &pool, None).unwrap();
        }
        prop_assert_eq!(mem_simt.as_bytes(), mem_scalar.as_bytes());
    }
}

/// A controller config over the proptest-drawn tunables, with the rest
/// held at the `ControllerConfig::from_net` defaults.
fn controller_cfg(slo_p99: f64, budget_frac: f64, max_depth: usize) -> ControllerConfig {
    ControllerConfig {
        slo_p99,
        budget_frac,
        min_deadline: 100e-6,
        min_depth: 1,
        max_depth,
        ewma_alpha: 0.3,
        tick: 2e-3,
    }
}

proptest! {
    /// The adaptive controller's outputs are always within the
    /// configured bounds — depth in `[min_depth, max_depth]`, deadline
    /// in `[min(min_deadline, base), base]` — for any observation,
    /// including negative or extreme values.
    #[test]
    fn controller_decision_is_bounded(
        slo in 1e-3f64..0.1,
        frac in 0.05f64..1.0,
        max_depth in 1u32..64,
        rate in -10.0f64..1e6,
        p99 in -1.0f64..1.0,
        fill in -1.0f64..2.0,
    ) {
        let cfg = controller_cfg(slo, frac, max_depth as usize);
        let d = decide(&cfg, rate, p99, fill);
        let base = frac * slo;
        let lo = cfg.min_deadline.min(base);
        prop_assert!(d.depth >= cfg.min_depth && d.depth <= cfg.max_depth);
        prop_assert!(d.deadline_s.is_finite());
        prop_assert!(d.deadline_s >= lo - 1e-15);
        prop_assert!(d.deadline_s <= base.max(lo) + 1e-15);
    }

    /// Target depth is monotone nondecreasing in observed load: more
    /// arrival rate or more recent fill never asks for a *shallower*
    /// cohort.
    #[test]
    fn controller_depth_is_monotone_in_load(
        slo in 1e-3f64..0.1,
        frac in 0.05f64..1.0,
        max_depth in 1u32..64,
        rate_lo in 0.0f64..5e5,
        rate_extra in 0.0f64..5e5,
        fill_lo in 0.0f64..1.0,
        fill_extra in 0.0f64..1.0,
        p99 in 0.0f64..0.5,
    ) {
        let cfg = controller_cfg(slo, frac, max_depth as usize);
        let fill_hi = (fill_lo + fill_extra).min(1.0);
        let a = decide(&cfg, rate_lo, p99, fill_lo);
        let b = decide(&cfg, rate_lo + rate_extra, p99, fill_hi);
        prop_assert!(
            b.depth >= a.depth,
            "depth must not shrink as load grows: {} -> {}",
            a.depth,
            b.depth
        );
    }

    /// The fill deadline is monotone nonincreasing in observed p99
    /// latency: more SLO pressure never *lengthens* cohort formation.
    #[test]
    fn controller_deadline_is_monotone_in_pressure(
        slo in 1e-3f64..0.1,
        frac in 0.05f64..1.0,
        max_depth in 1u32..64,
        rate in 0.0f64..1e6,
        fill in 0.0f64..1.0,
        p99_lo in 0.0f64..0.5,
        p99_extra in 0.0f64..0.5,
    ) {
        let cfg = controller_cfg(slo, frac, max_depth as usize);
        let a = decide(&cfg, rate, p99_lo, fill);
        let b = decide(&cfg, rate, p99_lo + p99_extra, fill);
        prop_assert!(
            b.deadline_s <= a.deadline_s + 1e-15,
            "deadline must not grow under pressure: {} -> {}",
            a.deadline_s,
            b.deadline_s
        );
    }
}
