//! End-to-end dispatch semantics: a mixed arrival stream is parsed,
//! grouped by type into uniform cohorts (the dispatch stage's job), and
//! every cohort executes correctly — the full paper §3.2 flow on real
//! request bytes.

use std::collections::BTreeMap;

use rhythm_banking::prelude::*;
use rhythm_http::padding::eq_modulo_padding;
use rhythm_simt::gpu::{Gpu, GpuConfig};

const SALT: u32 = 0x5EED_0001;

fn mask_content_length(resp: &[u8]) -> Vec<u8> {
    String::from_utf8_lossy(resp)
        .lines()
        .map(|l| {
            if l.starts_with("Content-Length:") {
                "Content-Length: <masked>".to_string()
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        .into_bytes()
}

#[test]
fn mixed_stream_groups_into_correct_cohorts() {
    let workload = Workload::build();
    let store = BankStore::generate(128, 55);
    let gpu = Gpu::new(GpuConfig::gtx_titan());

    // A mixed arrival stream (Table 2 distribution).
    let mut sessions = SessionArrayHost::new(2048, SALT);
    let mut generator = RequestGenerator::new(128, 2014);
    let stream = generator.mixed(192, &mut sessions);

    // 1. Parser over the mixed cohort classifies every request.
    let opts = CohortOptions {
        session_capacity: 2048,
        ..Default::default()
    };
    let (_, parsed) = run_parser_only(&workload, &stream, &gpu, &opts).unwrap();
    for (r, (ty_id, ..)) in stream.iter().zip(&parsed) {
        assert_eq!(*ty_id, r.ty.id());
    }

    // 2. Dispatch: group by type (what the dispatch stage does on the
    //    host), preserving arrival order within each group.
    let mut groups: BTreeMap<RequestType, Vec<GeneratedRequest>> = BTreeMap::new();
    for r in &stream {
        groups.entry(r.ty).or_default().push(r.clone());
    }

    // 3. Execute each uniform cohort; verify against the native handlers
    //    processing the same per-type order.
    let mut device_sessions = sessions.clone();
    let mut native_sessions = sessions.clone();
    let mut verified = 0usize;
    for (ty, cohort) in &groups {
        let result = run_cohort(&workload, &store, &mut device_sessions, cohort, &gpu, &opts)
            .unwrap_or_else(|e| panic!("{ty}: {e}"));
        for (lane, req) in cohort.iter().enumerate() {
            let native = handle_native(&req.banking_request(), &store, &mut native_sessions);
            assert!(
                eq_modulo_padding(
                    &mask_content_length(&result.responses[lane]),
                    &mask_content_length(&native)
                ),
                "{ty} lane {lane}"
            );
            verified += 1;
        }
    }
    assert_eq!(verified, stream.len(), "every request verified once");

    // 4. Session state converges to the same population either way.
    assert_eq!(device_sessions.len(), native_sessions.len());
}

#[test]
fn per_group_order_preserves_login_token_assignment() {
    // Logins in a mixed stream must receive the same tokens on the device
    // as natively, because insertion order within the login cohort is the
    // stream order.
    let workload = Workload::build();
    let store = BankStore::generate(64, 9);
    let gpu = Gpu::new(GpuConfig::gtx_titan());

    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(64, 31);
    let logins = generator.uniform(RequestType::Login, 48, &mut sessions);

    let opts = CohortOptions {
        session_capacity: 1024,
        ..Default::default()
    };
    let mut dev = sessions.clone();
    let result = run_cohort(&workload, &store, &mut dev, &logins, &gpu, &opts).unwrap();

    let mut nat = sessions.clone();
    for (lane, req) in logins.iter().enumerate() {
        let native = handle_native(&req.banking_request(), &store, &mut nat);
        let tok = |bytes: &[u8]| -> u32 {
            String::from_utf8_lossy(bytes)
                .lines()
                .find(|l| l.starts_with("Set-Cookie: SID="))
                .and_then(|l| l["Set-Cookie: SID=".len()..].trim().parse().ok())
                .unwrap_or(0)
        };
        assert_eq!(
            tok(&result.responses[lane]),
            tok(&native),
            "lane {lane}: token assignment must match"
        );
    }
}
