//! Workspace-level integration tests: the full stack from raw HTTP bytes
//! through the SIMT kernels, the pipeline, and the platform models.

use rhythm_banking::prelude::*;
use rhythm_core::pipeline::{Pipeline, PipelineConfig};
use rhythm_core::service::TableService;
use rhythm_platform::presets::{CpuPreset, TitanPlatform, TitanPreset};
use rhythm_simt::gpu::{Gpu, GpuConfig};

const SALT: u32 = 0x5EED_0001;

/// The whole device path agrees with the whole host path, end to end,
/// starting from raw HTTP text.
#[test]
fn raw_http_to_padded_responses() {
    let workload = Workload::build();
    let store = BankStore::generate(64, 21);
    let gpu = Gpu::new(GpuConfig::gtx_titan());

    let mut sessions = SessionArrayHost::new(512, SALT);
    let mut generator = RequestGenerator::new(64, 9);
    let cohort = generator.uniform(RequestType::CheckDetailHtml, 32, &mut sessions);

    // Raw bytes parse identically with the host HTTP substrate.
    for r in &cohort {
        let parsed = rhythm_http::HttpRequest::parse(&r.raw).expect("valid http");
        assert_eq!(parsed.file_name(), r.ty.file_name());
    }

    let opts = CohortOptions {
        session_capacity: 512,
        ..Default::default()
    };
    let mut s = sessions.clone();
    let result = run_cohort(&workload, &store, &mut s, &cohort, &gpu, &opts).unwrap();
    for (lane, resp) in result.responses.iter().enumerate() {
        assert!(
            resp.starts_with(b"HTTP/1.1 200 OK"),
            "lane {lane}: {}",
            String::from_utf8_lossy(&resp[..40.min(resp.len())])
        );
    }
}

/// Measured kernel stats drive the platform model and produce a sane
/// design-space ordering: the GPU path beats the i7 on throughput.
#[test]
fn measured_stats_flow_into_platform_model() {
    let workload = Workload::build();
    let store = BankStore::generate(64, 3);
    let gpu = Gpu::new(GpuConfig::gtx_titan());

    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(64, 5);
    let ty = RequestType::Login;
    let cohort = generator.uniform(ty, 256, &mut sessions);

    let opts = CohortOptions {
        session_capacity: 1024,
        ..Default::default()
    };
    let mut s = sessions.clone();
    let result = run_cohort(&workload, &store, &mut s, &cohort, &gpu, &opts).unwrap();
    let device_time: f64 = result
        .launches
        .iter()
        .map(|(_, l)| gpu.sustained_time(&l.stats))
        .sum();
    let gpu_tput = 256.0 / device_time;

    // The i7 at the paper's calibration, on this type's instruction count.
    let mut s2 = sessions.clone();
    let scalar = run_request_scalar(&workload, &store, &mut s2, &cohort[0], false).unwrap();
    let i7 = CpuPreset::i7_8w();
    // Unit conversion: IR instructions are denser than the paper's x86.
    let x86_equiv = scalar.stats.instructions as f64 * 429_563.0 / 195_000.0;
    let i7_tput = i7.throughput(x86_equiv);

    assert!(
        gpu_tput > 2.0 * i7_tput,
        "cohort execution should beat the i7: gpu {gpu_tput:.0} vs i7 {i7_tput:.0}"
    );
}

/// The pipeline, the cohort FSM and the event queue cooperate: every
/// request injected completes exactly once, under every configuration.
#[test]
fn pipeline_conservation_across_configs() {
    for (cohort, slots, pool) in [(16u32, 1u32, 2u32), (64, 32, 8), (256, 4, 3)] {
        let config = PipelineConfig {
            cohort_size: cohort,
            read_batch: cohort,
            formation_timeout_s: 2e-3,
            reader_timeout_s: 1e-3,
            pool_contexts: pool,
            device_slots: slots,
            parser_instances: 1,
        };
        let p = Pipeline::new(TableService::uniform(3, 2), config);
        let arrivals: Vec<(f64, u32)> = (0..1000)
            .map(|i| (i as f64 * 1e-6, (i % 3) as u32))
            .collect();
        let r = p.run(&arrivals);
        assert_eq!(
            r.completed, 1000,
            "cohort={cohort} slots={slots} pool={pool}"
        );
        assert_eq!(r.latency.count, 1000);
        assert!(r.latency.max >= r.latency.mean);
    }
}

/// Paper Table 3 invariants hold for the calibrated presets.
#[test]
fn preset_sanity() {
    let i7 = CpuPreset::i7_8w();
    let a9 = CpuPreset::a9_2w();
    assert!(i7.paper_tput / a9.paper_tput > 20.0);
    assert!(a9.wall_w < 5.0);
    for t in [TitanPlatform::A, TitanPlatform::B, TitanPlatform::C] {
        let p = TitanPreset::of(t);
        assert_eq!(p.idle_w, 74.0);
        assert!(p.wall_w > p.idle_w);
    }
}

/// Sessions created on the device are visible to the native handlers and
/// vice versa — the two implementations share one session algorithm.
#[test]
fn sessions_interoperate_between_device_and_native() {
    let workload = Workload::build();
    let store = BankStore::generate(64, 8);
    let gpu = Gpu::new(GpuConfig::gtx_titan());

    // Log in on the device.
    let mut sessions = SessionArrayHost::new(512, SALT);
    let mut generator = RequestGenerator::new(64, 77);
    let logins = generator.uniform(RequestType::Login, 32, &mut sessions);
    let opts = CohortOptions {
        session_capacity: 512,
        ..Default::default()
    };
    let result = run_cohort(&workload, &store, &mut sessions, &logins, &gpu, &opts).unwrap();
    assert_eq!(sessions.len(), 32);

    // Use one of the device-created tokens with the native handler.
    let text = String::from_utf8_lossy(&result.responses[0]);
    let token: u32 = text
        .lines()
        .find(|l| l.starts_with("Set-Cookie: SID="))
        .unwrap()["Set-Cookie: SID=".len()..]
        .trim()
        .parse()
        .unwrap();
    let userid = sessions
        .lookup(token)
        .expect("device session valid on host");
    let req = BankingRequest::new(RequestType::Profile, token, [userid, 0, 0, 0]);
    let resp = handle_native(&req, &store, &mut sessions);
    assert!(resp.starts_with(b"HTTP/1.1 200 OK"));
}
