//! End-to-end acceptance of the live telemetry plane over real sockets:
//! `/metrics` counters must exactly match the loadgen's totals at shard
//! counts {1, 2, 4}, the admin documents must validate, the SIMT device
//! counters must surface per shard, and metered execution must stay
//! byte-identical to bare (`telemetry: false`) execution on both the
//! scalar and SIMT serving paths.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rhythm_banking::prelude::*;
use rhythm_net::{
    read_response, send_request, CohortHandler, NetConfig, NetServer, ShardedServer, Telemetry,
};
use rhythm_simt::gpu::{Gpu, GpuConfig};

const NUM_USERS: u32 = 64;
const CAPACITY: u32 = 4096;
const SALT: u32 = 0x5EED_0001;

fn config(telemetry: bool) -> NetConfig {
    NetConfig {
        cohort_size: 4,
        fill_timeout: Duration::from_millis(1),
        pool_contexts: 16,
        telemetry,
        ..NetConfig::default()
    }
}

fn scalar_handler() -> ScalarHandler {
    ScalarHandler::new(
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(CAPACITY, SALT),
    )
}

fn simt_handler() -> SimtHandler {
    let opts = CohortOptions {
        session_capacity: CAPACITY,
        session_salt: SALT,
        ..CohortOptions::default()
    };
    SimtHandler::new(
        Workload::build(),
        BankStore::generate(NUM_USERS, 1),
        SessionArrayHost::new(CAPACITY, SALT),
        Gpu::new(GpuConfig::gtx_titan()),
        opts,
    )
}

fn connect(addr: SocketAddr) -> TcpStream {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn
}

/// One closed-loop client conversation: login, then `gets` session-bearing
/// page fetches. Returns every raw response in order.
fn conversation(addr: SocketAddr, userid: u32, gets: usize) -> Vec<Vec<u8>> {
    let mut conn = connect(addr);
    let mut carry = Vec::new();
    let mut out = Vec::new();
    send_request(
        &mut conn,
        format!(
            "POST /bank/login.php HTTP/1.1\r\nHost: t\r\nContent-Length: 8\r\n\r\nuserid={userid}"
        )
        .as_bytes(),
    )
    .unwrap();
    let login = read_response(&mut conn, &mut carry).expect("login");
    assert_eq!(login.status, 200);
    let token: u32 = login
        .header("Set-Cookie")
        .and_then(|v| v.strip_prefix("SID=").map(|t| t.trim().to_string()))
        .and_then(|t| t.parse().ok())
        .expect("login sets SID");
    out.push(login.bytes);
    for i in 0..gets {
        let page = if i % 2 == 0 {
            "account_summary.php"
        } else {
            "profile.php"
        };
        send_request(
            &mut conn,
            format!(
                "GET /bank/{page}?userid={userid} HTTP/1.1\r\nHost: t\r\nCookie: SID={token}\r\n\r\n"
            )
            .as_bytes(),
        )
        .unwrap();
        let resp = read_response(&mut conn, &mut carry).expect("page");
        assert_eq!(resp.status, 200);
        out.push(resp.bytes);
    }
    out
}

/// GET one admin document off a live server.
fn admin_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut conn = connect(addr);
    let mut carry = Vec::new();
    send_request(
        &mut conn,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let resp = read_response(&mut conn, &mut carry).expect("admin response");
    (
        resp.status,
        String::from_utf8(resp.body().to_vec()).unwrap(),
    )
}

/// Sum every per-shard sample of a counter family in an exposition body.
fn sum_family(body: &str, family: &str) -> u64 {
    body.lines()
        .filter(|l| l.starts_with(&format!("{family}{{")))
        .filter_map(|l| l.split_whitespace().last())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

/// The acceptance gate: after a fixed closed-loop run, the `/metrics`
/// request and response counters exactly equal the loadgen's sent totals
/// at every shard count, and the other admin documents validate.
#[test]
fn metrics_counters_match_loadgen_totals_across_shard_counts() {
    for shards in [1usize, 2, 4] {
        let handlers: Vec<_> = (0..shards).map(|_| scalar_handler()).collect();
        let server = ShardedServer::bind("127.0.0.1:0", config(true), handlers).expect("bind");
        let addr = server.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || server.run(&flag));

        let clients = shards * 2;
        let gets = 10usize;
        std::thread::scope(|scope| {
            for c in 0..clients {
                scope.spawn(move || conversation(addr, c as u32 % NUM_USERS, gets));
            }
        });
        let sent = (clients * (gets + 1)) as u64;

        let (status, body) = admin_get(addr, "/metrics");
        assert_eq!(status, 200);
        rhythm_obs::validate_prometheus_text(&body).expect("exposition validates");
        assert_eq!(
            sum_family(&body, "rhythm_requests_total"),
            sent,
            "{shards} shard(s): server requests != loadgen sent"
        );
        assert_eq!(sum_family(&body, "rhythm_responses_total"), sent);
        assert_eq!(sum_family(&body, "rhythm_shed_503_total"), 0);

        let (status, health) = admin_get(addr, "/healthz");
        assert_eq!(status, 200);
        rhythm_obs::parse_json(&health).expect("healthz is JSON");
        assert!(health.contains("\"status\":\"ok\""));
        assert!(health.contains("\"balanced\":true"));

        let (status, trace) = admin_get(addr, "/trace");
        assert_eq!(status, 200);
        let check = rhythm_obs::validate_chrome_trace(&trace).expect("trace validates");
        assert!(check.events > 0, "flight recorder captured events");

        stop.store(true, Ordering::Relaxed);
        let run = join.join().expect("server");
        assert_eq!(run.total().requests, sent);
    }
}

/// SIMT device counters surface in the exposition when the handler is
/// wired into the shard's device registry.
#[test]
fn simt_device_counters_surface_in_metrics() {
    let telemetry = Arc::new(Telemetry::new(1));
    let handler = simt_handler().with_metrics(telemetry.device(0));
    let server = NetServer::bind("127.0.0.1:0", config(true), handler).expect("bind");
    let server = server.with_telemetry(&telemetry);
    let addr = server.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag));

    conversation(addr, 7, 4);

    let (status, body) = admin_get(addr, "/metrics");
    assert_eq!(status, 200);
    rhythm_obs::validate_prometheus_text(&body).expect("exposition validates");
    assert!(sum_family(&body, "rhythm_device_launches_total") > 0);
    assert!(sum_family(&body, "rhythm_device_cohorts_total") > 0);
    assert!(sum_family(&body, "rhythm_device_warp_instructions_total") > 0);
    assert!(body.contains("rhythm_device_simd_efficiency"));
    assert!(body.contains("rhythm_device_kernel_seconds_count"));
    assert!(body.contains("rhythm_device_hyperq_streams_count"));
    assert!(body.contains("rhythm_plan_cache_hits_total"));
    // Latency histograms are tagged with real Banking page names.
    assert!(body.contains("rhythm_request_latency_seconds_count{type=\"login.php\"}"));

    stop.store(true, Ordering::Relaxed);
    let (stats, handler) = join.join().expect("server");
    assert_eq!(stats.requests, 5);
    assert!(handler.cohorts > 0);
}

/// Metered and bare execution must be byte-identical: the telemetry plane
/// observes, it never alters a response.
#[test]
fn metered_and_bare_responses_are_byte_identical_scalar_and_simt() {
    fn run<H: CohortHandler + Send + 'static>(handler: H, telemetry: bool) -> Vec<Vec<u8>> {
        let server = NetServer::bind("127.0.0.1:0", config(telemetry), handler).expect("bind");
        let addr = server.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || server.run(&flag));
        let out = conversation(addr, 7, 6);
        stop.store(true, Ordering::Relaxed);
        join.join().expect("server");
        out
    }

    let scalar_metered = run(scalar_handler(), true);
    let scalar_bare = run(scalar_handler(), false);
    assert_eq!(
        scalar_metered, scalar_bare,
        "scalar path: metering altered a response byte"
    );

    let simt_metered = run(simt_handler(), true);
    let simt_bare = run(simt_handler(), false);
    assert_eq!(
        simt_metered, simt_bare,
        "SIMT path: metering altered a response byte"
    );

    // Metering on the device registry is equally inert.
    let telemetry = Arc::new(Telemetry::new(1));
    let simt_wired = run(simt_handler().with_metrics(telemetry.device(0)), true);
    assert_eq!(simt_wired, simt_bare, "device metrics altered a response");
}
